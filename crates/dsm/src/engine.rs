//! The DSM execution engine.
//!
//! [`Dsm`] runs a [`Program`] over a simulated cluster under a multi-writer
//! lazy-release-consistency protocol, with per-node multithreading and
//! latency hiding, and implements the paper's two tracking mechanisms:
//!
//! * **Active correlation tracking** (§4.2): [`Dsm::run_tracked_iteration`]
//!   arms a correlation bit on every page, pins each node's scheduler to one
//!   thread per barrier segment, logs first-touches into per-thread access
//!   bitmaps, and re-arms at every thread switch. The full protection-sweep
//!   and fault costs are charged, so the tracked iteration exhibits the
//!   Table 5 slowdown.
//! * **Passive correlation tracking** (§4.1): with
//!   [`Dsm::enable_passive_tracking`], the engine attributes a page to a
//!   thread only when that thread's access triggers a *remote* fault — so
//!   only the first local toucher of each invalidated page is observed,
//!   reproducing the partial-information pathology of Figure 2.
//!
//! Time is per-node virtual time: threads on a node interleave, block on
//! remote fetches (letting siblings run — the latency tolerance that active
//! tracking deliberately forfeits), and rendezvous at barriers. The engine
//! is a conservative discrete-event loop: the node with the smallest local
//! time that can make progress always steps next, so runs are deterministic.

use crate::config::{DsmConfig, InjectedBug, WriteMode};
use crate::error::DsmError;
use crate::locks::LockState;
use crate::node::NodeState;
use crate::oracle::{CoherenceOracle, OracleReport};
use crate::program::{validate_iteration, LockId, Op, Program};
use crate::protocol::{FetchPlan, PageDirectory};
use crate::stats::IterStats;
use crate::steer::{DecisionPoint, SchedulePolicy};
use crate::thread::{OngoingAccess, ThreadState, ThreadStatus};
use crate::trace::{Event, EventSink, SpanPhase, Trace};
use acorr_mem::{
    pages_for, span_pages, AccessKind, AccessMatrix, Arena, HbRaceDetector, PageId, PageSpan,
    Protection, RaceReport, VisibleImage,
};
use acorr_sim::{FaultAction, FaultInjector, Mapping, MessageKind, NodeId, SimDuration, SimTime};

/// Fixed framing overhead charged per diff, on top of the dirty bytes.
const DIFF_HEADER_BYTES: u64 = 16;
/// Per-fragment framing inside a diff.
const DIFF_RANGE_BYTES: u64 = 8;
/// Payload of one write notice.
const NOTICE_BYTES: u64 = 16;
/// Payload of one lock control message.
const LOCK_MSG_BYTES: u64 = 64;
/// Payload of one barrier control message.
const BARRIER_MSG_BYTES: u64 = 32;

/// Result of a reconfiguration via [`Dsm::migrate_to`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationReport {
    /// Threads that changed node.
    pub moved: usize,
    /// Stack bytes shipped.
    pub bytes: u64,
}

enum AccessOutcome {
    /// The access completed locally; move to the next span.
    Proceed,
    /// The access faulted; the span must be *retried* after the block (the
    /// multi-writer path: a fetched page stays valid until a sync point, so
    /// the retry always succeeds).
    Block(SimDuration),
    /// The access faulted and is considered performed at fetch completion;
    /// move to the next span, then block. The single-writer path needs
    /// this: a rival steal may invalidate the page again before this thread
    /// resumes, and retrying would livelock — real ownership protocols
    /// guarantee the faulting access completes when the page arrives
    /// (without that guarantee, §6's page thrashing becomes livelock).
    BlockCompleted(SimDuration),
}

/// A software DSM instance executing one program.
///
/// ```
/// use acorr_dsm::{Dsm, DsmConfig, Op, Program};
/// use acorr_sim::{ClusterConfig, Mapping};
///
/// struct TwoReaders;
/// impl Program for TwoReaders {
///     fn name(&self) -> &str { "two-readers" }
///     fn shared_bytes(&self) -> u64 { 8192 }
///     fn num_threads(&self) -> usize { 2 }
///     fn script(&self, thread: usize, _iter: usize) -> Vec<Op> {
///         vec![Op::read(thread as u64 * 4096, 64)]
///     }
/// }
///
/// # fn main() -> Result<(), acorr_dsm::DsmError> {
/// let cluster = ClusterConfig::new(2, 2)?;
/// let mapping = Mapping::stretch(&cluster);
/// let mut dsm = Dsm::new(DsmConfig::new(cluster), TwoReaders, mapping)?;
/// let stats = dsm.run_iterations(1)?;
/// // The thread on node 1 cold-misses its page; node 0 owns all pages.
/// assert_eq!(stats.remote_misses, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Dsm<P: Program> {
    program: P,
    config: DsmConfig,
    mapping: Mapping,
    nodes: Vec<NodeState>,
    threads: Vec<ThreadState>,
    directory: PageDirectory,
    locks: Vec<LockState>,
    num_pages: usize,
    next_iteration: usize,
    total: IterStats,
    cur: IterStats,
    tracking: Option<AccessMatrix>,
    passive: Option<AccessMatrix>,
    tracer: Option<Trace>,
    sink: Option<Box<dyn EventSink>>,
    /// When true (and a sink is attached), engine phases are bracketed by
    /// `Event::SpanBegin`/`SpanEnd` pairs for duration profiling.
    spans: bool,
    /// Monotone ordinal pairing each `SpanBegin` with its `SpanEnd`.
    span_seq: u64,
    interval_mark: IterStats,
    interval_start: SimTime,
    barrier_arrived: usize,
    faults: FaultInjector,
    oracle: Option<CoherenceOracle>,
    policy: Option<Box<dyn SchedulePolicy>>,
    race: Option<HbRaceDetector>,
    visible: Option<VisibleImage>,
    decision_seq: u64,
    /// Bump arena for per-interval page lists (write sets, lock write
    /// records); reset once per barrier interval.
    interval_arena: Arena<PageId>,
    /// Reusable fetch-plan buffer: every coherence fault fills this in
    /// place instead of allocating a fresh diff vector.
    plan_scratch: FetchPlan,
    /// Run-global barrier-interval ordinal: the index of fault decision
    /// points (one per interval, spanning iterations).
    fault_interval: u64,
    /// Active partition cut, if any: links crossing `split` are down for
    /// the current interval.
    partition_split: Option<usize>,
    /// Simulated time the active partition heals; cross-cut messages sent
    /// before it are buffered (delivered at the heal), never lost.
    partition_until: SimTime,
    /// Interval-scoped fault: every message this interval is delivered
    /// twice (the duplicate is absorbed idempotently).
    interval_dup: bool,
    /// Interval-scoped fault: every message this interval arrives corrupted
    /// once — caught by checksum, repaired by retransmission.
    interval_corrupt: bool,
}

impl<P: Program> Dsm<P> {
    /// Creates a DSM instance with all shared pages initially owned by
    /// node 0 (where a real application's master thread would have
    /// initialized them).
    ///
    /// # Errors
    ///
    /// Returns [`DsmError::MappingMismatch`] when the mapping does not cover
    /// exactly the program's threads, and propagates script validation
    /// errors for iteration 0.
    pub fn new(config: DsmConfig, program: P, mapping: Mapping) -> Result<Self, DsmError> {
        if mapping.num_threads() != program.num_threads()
            || mapping.num_threads() != config.cluster.num_threads()
        {
            return Err(DsmError::MappingMismatch {
                mapping_threads: mapping.num_threads(),
                program_threads: program.num_threads(),
            });
        }
        let num_pages = pages_for(program.shared_bytes()) as usize;
        let num_nodes = config.cluster.num_nodes();
        let mut nodes: Vec<NodeState> = (0..num_nodes)
            .map(|i| NodeState::new(NodeId(i as u16), num_pages, i == 0))
            .collect();
        let mut threads = Vec::with_capacity(mapping.num_threads());
        for t in 0..mapping.num_threads() {
            let node = mapping.node_of(t);
            nodes[node.idx()].threads.push(t);
            threads.push(ThreadState::new(node));
        }
        let locks = (0..program.num_locks()).map(|_| LockState::new()).collect();
        let faults = FaultInjector::new(config.faults.clone(), num_nodes);
        Ok(Dsm {
            directory: PageDirectory::new(num_pages, NodeId(0)),
            program,
            config,
            mapping,
            nodes,
            threads,
            locks,
            num_pages,
            next_iteration: 0,
            total: IterStats::new(),
            cur: IterStats::new(),
            tracking: None,
            passive: None,
            tracer: None,
            sink: None,
            spans: false,
            span_seq: 0,
            interval_mark: IterStats::new(),
            interval_start: SimTime::ZERO,
            barrier_arrived: 0,
            faults,
            oracle: None,
            policy: None,
            race: None,
            visible: None,
            decision_seq: 0,
            interval_arena: Arena::new(),
            plan_scratch: FetchPlan::default(),
            fault_interval: 0,
            partition_split: None,
            partition_until: SimTime::ZERO,
            interval_dup: false,
            interval_corrupt: false,
        })
    }

    /// The program being executed.
    pub fn program(&self) -> &P {
        &self.program
    }

    /// The current thread-to-node mapping.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Number of shared pages.
    pub fn num_pages(&self) -> usize {
        self.num_pages
    }

    /// The iteration the next run will execute.
    pub fn next_iteration(&self) -> usize {
        self.next_iteration
    }

    /// Aggregate statistics since construction.
    pub fn total_stats(&self) -> IterStats {
        self.total
    }

    /// Per-node page residency: how many pages each node currently holds
    /// valid, and how many of those are writable (twinned or owned). A
    /// cheap snapshot of replication state for observability.
    pub fn page_residency(&self) -> Vec<(usize, usize)> {
        self.nodes
            .iter()
            .map(|n| (n.pages.count_valid(), n.pages.count_read_write()))
            .collect()
    }

    /// Cumulative remote misses per node since construction — exposes load
    /// imbalance in the coherence traffic.
    pub fn node_misses(&self) -> Vec<u64> {
        self.nodes.iter().map(|n| n.remote_misses).collect()
    }

    /// Cumulative tracking faults per node since construction. §4.2 notes
    /// that tracking cost is incurred locally and in parallel; this is the
    /// per-node breakdown behind that claim.
    pub fn node_tracking_faults(&self) -> Vec<u64> {
        self.nodes.iter().map(|n| n.tracking_faults).collect()
    }

    /// Current global virtual time (all nodes are synchronized between
    /// iterations).
    pub fn now(&self) -> SimTime {
        self.nodes
            .iter()
            .map(|n| n.time)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Starts recording protocol events into a bounded trace (newest
    /// `capacity` events are retained). Tracing is off by default and has
    /// no cost while off.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.tracer = Some(Trace::new(capacity));
    }

    /// Stops tracing and returns the recorded events, if enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.tracer.take()
    }

    /// Attaches an external event sink. Every protocol event, remote-fetch
    /// latency, lock-grant latency, and per-barrier-interval statistic delta
    /// is forwarded to it, at the same sites the fault injector already
    /// wraps. Sinks are a pure observer: simulated time, statistics and
    /// scheduling are bit-identical with or without one attached.
    pub fn attach_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the attached sink, if any.
    pub fn take_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.take()
    }

    /// Enables span-based self-profiling: engine phases (twin create, diff
    /// build, fetch, apply, lock grant, barrier close) are bracketed by
    /// [`Event::SpanBegin`]/[`Event::SpanEnd`] pairs forwarded to the
    /// attached sink. Spans are a pure observer — they never reach the
    /// bounded trace ring, charge no simulated time, and mutate no engine
    /// state beyond the span ordinal (which only advances while emitting).
    pub fn enable_span_profiling(&mut self) {
        self.spans = true;
    }

    /// Records `event` at node `i`'s current time, when tracing or an
    /// external sink is on.
    fn emit(&mut self, i: usize, event: Event) {
        if self.tracer.is_none() && self.sink.is_none() {
            return;
        }
        let at = self.nodes[i].time;
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.record(at, event);
        }
        if let Some(sink) = self.sink.as_mut() {
            sink.record_event(at, &event);
        }
    }

    /// Forwards one remote-fetch latency to the sink, charged at node `i`'s
    /// current time.
    fn emit_fetch_latency(&mut self, i: usize, latency: SimDuration) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record_fetch_latency(self.nodes[i].time, self.nodes[i].id, latency);
        }
    }

    /// Forwards one lock-grant latency to the sink, charged at node `i`'s
    /// current time.
    fn emit_lock_latency(&mut self, i: usize, latency: SimDuration) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record_lock_latency(self.nodes[i].time, self.nodes[i].id, latency);
        }
    }

    /// Emits one profiling span `[start, start + dur]` for `phase` on node
    /// `i`, when span profiling and a sink are both on. Spans bypass the
    /// trace ring: they are an observability artifact, not a protocol event.
    fn emit_span(&mut self, i: usize, phase: SpanPhase, start: SimTime, dur: SimDuration) {
        if !self.spans || self.sink.is_none() {
            return;
        }
        let id = self.span_seq;
        self.span_seq += 1;
        let node = self.nodes[i].id;
        let sink = self.sink.as_mut().expect("checked above");
        sink.record_event(start, &Event::SpanBegin { id, phase, node });
        sink.record_event(start + dur, &Event::SpanEnd { id, phase, node });
    }

    /// Starts recording passive observations: pages are attributed to
    /// threads only when their access takes a *remote* fault.
    pub fn enable_passive_tracking(&mut self) {
        if self.passive.is_none() {
            self.passive = Some(AccessMatrix::new(self.threads.len(), self.num_pages));
        }
    }

    /// Stops passive tracking and returns the observations, if enabled.
    pub fn take_passive_observations(&mut self) -> Option<AccessMatrix> {
        self.passive.take()
    }

    /// Enables the conformance oracle: a sequential reference memory that
    /// shadows the protocol and checks release-consistency visibility at
    /// every fetch, finalization, lock release and barrier. Violations
    /// surface as [`DsmError::OracleViolation`] from the run methods.
    ///
    /// The oracle is observation-only: enabling it changes no simulated
    /// time, traffic or scheduling.
    pub fn enable_oracle(&mut self) {
        if self.oracle.is_none() {
            let sw = matches!(self.config.write_mode, WriteMode::SingleWriter { .. });
            self.oracle = Some(CoherenceOracle::new(self.nodes.len(), self.num_pages, sw));
        }
    }

    /// The oracle's checking summary, if the oracle is enabled.
    pub fn oracle_report(&self) -> Option<OracleReport> {
        self.oracle.as_ref().map(|o| o.report())
    }

    /// Pages the oracle currently masks as hazy (data-raced), if enabled.
    pub fn oracle_hazy_pages(&self) -> Option<Vec<PageId>> {
        self.oracle.as_ref().map(|o| o.hazy_pages())
    }

    /// Attaches a scheduling policy consulted at every steerable decision
    /// point (ready-queue dispatch, lock-grant order) with more than one
    /// legal choice. A policy that always answers `0` reproduces the
    /// unsteered engine bit-for-bit; detaching restores FIFO behavior.
    pub fn set_schedule_policy(&mut self, policy: Box<dyn SchedulePolicy>) {
        self.policy = Some(policy);
    }

    /// Detaches and returns the scheduling policy, if any.
    pub fn take_schedule_policy(&mut self) -> Option<Box<dyn SchedulePolicy>> {
        self.policy.take()
    }

    /// Decision points consulted so far (0 while no policy is attached).
    pub fn decision_points(&self) -> u64 {
        self.decision_seq
    }

    /// Enables happens-before race detection over the simulated page
    /// accesses: vector clocks per thread and lock, histories cleared at
    /// each global barrier. Observation-only, like the oracle.
    pub fn enable_race_detection(&mut self) {
        if self.race.is_none() {
            self.race = Some(HbRaceDetector::new(
                self.threads.len(),
                self.locks.len(),
                self.num_pages,
            ));
        }
    }

    /// The race detector's findings, if enabled.
    pub fn race_report(&self) -> Option<RaceReport> {
        self.race.as_ref().map(|r| r.report())
    }

    /// Enables the program-visible memory model used for differential
    /// protocol checking: deterministic write tokens, order-sensitive byte
    /// masking, and a per-barrier digest stream. When the oracle is also
    /// enabled, its committed image is cross-checked against this model at
    /// every barrier. Observation-only.
    pub fn enable_visible_image(&mut self) {
        if self.visible.is_none() {
            self.visible = Some(VisibleImage::new(self.threads.len(), self.num_pages));
        }
    }

    /// The visible-memory model, if enabled.
    pub fn visible_image(&self) -> Option<&VisibleImage> {
        self.visible.as_ref()
    }

    /// Consults the attached policy at a decision point with `alternatives`
    /// legal choices (callers guarantee a policy is attached and
    /// `alternatives >= 2`), emitting the decision as a trace event.
    fn decide(&mut self, i: usize, point: DecisionPoint, alternatives: usize) -> usize {
        let policy = self.policy.as_mut().expect("caller checked policy");
        let choice = policy.choose(point, alternatives).min(alternatives - 1);
        let seq = self.decision_seq;
        self.decision_seq += 1;
        self.emit(
            i,
            Event::ScheduleDecision {
                seq,
                alternatives: alternatives as u32,
                choice: choice as u32,
            },
        );
        choice
    }

    /// Forwards one completed application access to the race detector and
    /// (for writes) the visible-memory model.
    fn observe_access(&mut self, t: usize, span: PageSpan, kind: AccessKind) {
        if self.race.is_none() && self.visible.is_none() {
            return;
        }
        let write = kind == AccessKind::Write;
        if let Some(r) = self.race.as_mut() {
            r.on_access(t, span, write);
        }
        if write {
            let under_lock = !self.threads[t].held_locks.is_empty();
            if let Some(v) = self.visible.as_mut() {
                v.on_write(t, span, under_lock);
            }
        }
    }

    /// Sends one protocol message charged to node `i`: records it, lets the
    /// fault injector perturb it (timeouts and retransmissions, stochastic
    /// duplication and corruption), then applies any interval-scoped fault —
    /// forced duplication or corruption, or an active partition when the
    /// destination `dst` sits across the cut. Returns the total delivery
    /// latency. With no fault plan and no active interval fault this is
    /// exactly `base`.
    ///
    /// `dst` is `None` for messages with no single destination (broadcast
    /// write notices, lock control whose peer the model keeps abstract);
    /// those never stall at a partition.
    fn net_send(
        &mut self,
        i: usize,
        kind: MessageKind,
        bytes: u64,
        base: SimDuration,
        dst: Option<usize>,
    ) -> SimDuration {
        self.cur.net.record(kind, bytes);
        if self.faults.is_none()
            && self.partition_split.is_none()
            && !self.interval_dup
            && !self.interval_corrupt
        {
            return base;
        }
        let d = self
            .faults
            .deliver(self.nodes[i].id, self.nodes[i].time, base, bytes);
        if d.retries > 0 {
            self.cur.retries += d.retries as u64;
            self.cur.net.record_retrans(kind, bytes, d.retries as u64);
        }
        if d.duplicates > 0 {
            self.cur.dup_messages += d.duplicates as u64;
            self.cur.dup_bytes += bytes * d.duplicates as u64;
            self.cur
                .net
                .record_retrans(kind, bytes, d.duplicates as u64);
        }
        if d.corrupt_detected > 0 {
            self.cur.corrupt_detected += d.corrupt_detected as u64;
            self.cur
                .net
                .record_retrans(kind, bytes, d.corrupt_detected as u64);
        }
        let mut latency = d.latency;
        if self.interval_dup {
            // The duplicate is absorbed idempotently: traffic in the
            // retransmission ledger, no extra protocol latency.
            self.cur.dup_messages += 1;
            self.cur.dup_bytes += bytes;
            self.cur.net.record_retrans(kind, bytes, 1);
        }
        if self.interval_corrupt {
            // Checksum catches the corruption; one full retransmission.
            self.cur.corrupt_detected += 1;
            self.cur.net.record_retrans(kind, bytes, 1);
            latency += base;
        }
        if let (Some(split), Some(dst)) = (self.partition_split, dst) {
            let now = self.nodes[i].time;
            if (i < split) != (dst < split) && now < self.partition_until {
                // The cut buffers the message until it heals: delivered
                // late, never lost (the delivered multiset is preserved).
                latency += self.partition_until.saturating_since(now);
                self.cur.partition_delays += 1;
            }
        }
        latency
    }

    /// Like [`Dsm::net_send`] for messages the baseline cost model treats as
    /// free (write notices, barrier control): only the fault-induced *extra*
    /// latency beyond the nominal cost is charged, so a zero-fault run stays
    /// byte-identical to one without the injector.
    fn net_send_extra(
        &mut self,
        i: usize,
        kind: MessageKind,
        bytes: u64,
        dst: Option<usize>,
    ) -> SimDuration {
        let base = self.config.network.control_time();
        self.net_send(i, kind, bytes, base, dst)
            .saturating_sub(base)
    }

    /// Opens a new barrier interval for fault purposes: any interval-scoped
    /// fault from the previous interval ends (the partition heals), then
    /// one fault action is decided for the new interval — by the attached
    /// policy's `inject` hook when a policy is present (the model checker's
    /// systematic enumeration), by the stochastic plan otherwise.
    ///
    /// Pure runs — no policy, and a plan without interval-scoped faults —
    /// return before consuming anything, so fault-free executions stay
    /// bit-identical to an engine without fault decision points.
    fn begin_fault_interval(&mut self) {
        self.partition_split = None;
        self.interval_dup = false;
        self.interval_corrupt = false;
        if self.policy.is_none() && !self.config.faults.has_interval_faults() {
            return;
        }
        let interval = self.fault_interval;
        self.fault_interval += 1;
        let nodes = self.nodes.len();
        let alternatives = FaultAction::alternatives(nodes);
        let (action, choice) = if let Some(policy) = self.policy.as_mut() {
            let choice = policy.inject(interval, alternatives).min(alternatives - 1);
            (FaultAction::from_choice(choice, nodes), choice)
        } else {
            let action = self.faults.interval_action(interval, nodes);
            // The stochastic draw maps back onto the same menu the model
            // checker enumerates, so a random counterexample can be
            // replayed as a prescribed fault token.
            let choice = match action {
                FaultAction::None => 0,
                FaultAction::Partition { .. } => 1,
                FaultAction::Duplicate => 2,
                FaultAction::Corrupt => 3,
                FaultAction::Crash { .. } => 4,
            };
            (action, choice)
        };
        if action == FaultAction::None {
            return;
        }
        self.emit(
            0,
            Event::FaultDecision {
                interval,
                alternatives: alternatives as u32,
                choice: choice as u32,
            },
        );
        match action {
            FaultAction::None => {}
            FaultAction::Partition { split } => {
                let split = split.clamp(1, nodes - 1);
                self.partition_split = Some(split);
                let window = if self.config.faults.partition_window.is_zero() {
                    SimDuration::from_millis(2)
                } else {
                    self.config.faults.partition_window
                };
                self.partition_until = self.now() + window;
            }
            FaultAction::Duplicate => self.interval_dup = true,
            FaultAction::Corrupt => self.interval_corrupt = true,
            FaultAction::Crash { node } => self.crash_node(node.min(nodes - 1)),
        }
    }

    /// Crashes node `victim` at a barrier boundary and rejoins it with a
    /// cold cache: every cached page copy and all per-page protocol
    /// metadata are wiped. Recovery is protocol-level state reconstruction:
    /// under the multi-writer protocol the surviving directory (stable
    /// storage in this model) holds every finalized diff, so each page
    /// re-fetches lazily on the next access; under single-writer, pages the
    /// victim owned transfer to a survivor, which receives the current
    /// committed copy. The reconstruction traffic is charged where it
    /// happens — at the recovery fetches — not here.
    fn crash_node(&mut self, victim: usize) {
        let nodes = self.nodes.len();
        if nodes < 2 {
            return;
        }
        let victim = victim.min(nodes - 1);
        let mut wiped = 0u64;
        for p in 0..self.num_pages {
            let pages = &mut self.nodes[victim].pages;
            if pages.has_copy(p) {
                wiped += 1;
            }
            pages.set_valid(p, false);
            pages.set_has_copy(p, false);
            pages.set_twin(p, false);
            pages.set_prot(p, Protection::None);
            pages.set_applied_version(p, 0);
            pages.dirty_mut(p).clear();
        }
        self.nodes[victim].write_set.clear();
        self.cur.crashes += 1;
        self.cur.pages_wiped += wiped;
        if let Some(o) = self.oracle.as_mut() {
            o.on_crash(victim);
        }
        self.emit(
            victim,
            Event::NodeCrash {
                node: self.nodes[victim].id,
                pages: wiped,
            },
        );
        if matches!(self.config.write_mode, WriteMode::SingleWriter { .. }) {
            // Ownership must not die with the node: every victim-owned page
            // transfers to a survivor, which takes the committed copy (the
            // single valid replica the eager protocol requires).
            let survivor = usize::from(victim == 0);
            let survivor_id = self.nodes[survivor].id;
            let victim_id = self.nodes[victim].id;
            let now = self.now();
            for p in 0..self.num_pages {
                let page = PageId(p as u32);
                if self.directory.page(page).owner != victim_id {
                    continue;
                }
                self.directory.transfer_ownership(page, survivor_id, now);
                let pages = &mut self.nodes[survivor].pages;
                pages.set_valid(p, true);
                pages.set_has_copy(p, true);
                if pages.prot(p) == Protection::None {
                    pages.set_prot(p, Protection::Read);
                }
                if let Some(o) = self.oracle.as_mut() {
                    o.on_fetch_sw(survivor, page);
                }
                self.emit(
                    survivor,
                    Event::OwnershipTransfer {
                        page,
                        to: survivor_id,
                    },
                );
            }
        }
    }

    /// Runs `n` ordinary iterations and returns their aggregate statistics.
    ///
    /// # Errors
    ///
    /// Propagates script validation failures and deadlocks.
    pub fn run_iterations(&mut self, n: usize) -> Result<IterStats, DsmError> {
        let mut agg = IterStats::new();
        for _ in 0..n {
            agg += self.run_one(false)?;
        }
        Ok(agg)
    }

    /// Runs one iteration under active correlation tracking (§4.2) and
    /// returns its statistics plus the per-thread access bitmaps.
    ///
    /// # Errors
    ///
    /// Propagates script validation failures and deadlocks.
    pub fn run_tracked_iteration(&mut self) -> Result<(IterStats, AccessMatrix), DsmError> {
        let stats = self.run_one(true)?;
        let matrix = self.tracking.take().expect("tracked run stores its matrix");
        Ok((stats, matrix))
    }

    /// Reconfigures the running application to `new_mapping` by migrating
    /// threads (stack copies) between iterations, as §5 describes.
    ///
    /// # Errors
    ///
    /// Returns [`DsmError::MappingMismatch`] when the mapping covers a
    /// different thread count.
    pub fn migrate_to(&mut self, new_mapping: Mapping) -> Result<MigrationReport, DsmError> {
        if new_mapping.num_threads() != self.threads.len() {
            return Err(DsmError::MappingMismatch {
                mapping_threads: new_mapping.num_threads(),
                program_threads: self.threads.len(),
            });
        }
        let stack = self.config.cost.migration_stack_bytes;
        let mut moved = 0usize;
        let mut incoming = vec![0u64; self.nodes.len()];
        for t in 0..self.threads.len() {
            let from = self.threads[t].node;
            let to = new_mapping.node_of(t);
            if from != to {
                moved += 1;
                incoming[to.idx()] += 1;
                self.total.migrations += 1;
                self.total.net.record(MessageKind::Migration, stack);
                self.threads[t].node = to;
                self.emit(to.idx(), Event::Migration { thread: t, to });
            }
        }
        if moved > 0 {
            // Each node receives its incoming stacks, then all nodes
            // rendezvous (migration happens inside a barrier).
            let per_stack = self.config.network.transfer_time(stack);
            for (i, &arriving) in incoming.iter().enumerate() {
                if self.faults.is_none() {
                    self.nodes[i].time += per_stack * arriving;
                    continue;
                }
                for _ in 0..arriving {
                    let d =
                        self.faults
                            .deliver(self.nodes[i].id, self.nodes[i].time, per_stack, stack);
                    if d.retries > 0 {
                        self.total.retries += d.retries as u64;
                        self.total.net.record_retrans(
                            MessageKind::Migration,
                            stack,
                            d.retries as u64,
                        );
                    }
                    self.nodes[i].time += d.latency;
                }
            }
            let release = self
                .nodes
                .iter()
                .map(|n| n.time)
                .max()
                .expect("at least one node")
                + self.config.cost.barrier(self.nodes.len() as u64);
            for node in &mut self.nodes {
                node.time = release;
                node.threads.clear();
                node.last_ran = None;
            }
            for t in 0..self.threads.len() {
                let node = self.threads[t].node;
                self.nodes[node.idx()].threads.push(t);
            }
        }
        self.mapping = new_mapping;
        Ok(MigrationReport {
            moved,
            bytes: moved as u64 * stack,
        })
    }

    /// Unilateral thread export matched by an import (§5): swaps two
    /// threads between their nodes, preserving every node's thread count.
    /// A no-op (zero moves) when both threads already share a node.
    ///
    /// # Errors
    ///
    /// Returns [`DsmError::MappingMismatch`] if either index is out of
    /// range.
    pub fn swap_threads(&mut self, a: usize, b: usize) -> Result<MigrationReport, DsmError> {
        if a >= self.threads.len() || b >= self.threads.len() {
            return Err(DsmError::MappingMismatch {
                mapping_threads: a.max(b) + 1,
                program_threads: self.threads.len(),
            });
        }
        let mut target = self.mapping.clone();
        let (na, nb) = (target.node_of(a), target.node_of(b));
        target.set_node_of(a, nb);
        target.set_node_of(b, na);
        self.migrate_to(target)
    }

    // ------------------------------------------------------------------
    // Iteration driver
    // ------------------------------------------------------------------

    fn run_one(&mut self, tracked: bool) -> Result<IterStats, DsmError> {
        let iteration = self.next_iteration;
        validate_iteration(&self.program, iteration)?;
        let start = self.now();
        // Load scripts with the implicit end-of-iteration barrier.
        for t in 0..self.threads.len() {
            let mut script = self.program.script(t, iteration);
            script.push(Op::Barrier);
            self.threads[t].load(script);
        }
        for node in &mut self.nodes {
            node.ready.clear();
            node.last_ran = None;
            node.write_set.clear();
            for &t in &node.threads {
                node.ready.push_back(t);
            }
        }
        self.cur = IterStats::new();
        self.interval_mark = IterStats::new();
        self.interval_start = start;
        self.barrier_arrived = 0;
        if let Some(o) = self.oracle.as_mut() {
            o.begin_iteration(iteration);
        }
        if tracked {
            self.tracking = Some(AccessMatrix::new(self.threads.len(), self.num_pages));
            let sweep = self.config.cost.protect_sweep(self.num_pages as u64);
            for node in &mut self.nodes {
                node.arm_all_pages();
                node.time += sweep;
                node.pinned = if node.threads.is_empty() {
                    None
                } else {
                    Some(0)
                };
            }
        } else {
            self.tracking = None;
            for node in &mut self.nodes {
                node.pinned = None;
            }
        }
        self.begin_fault_interval();

        loop {
            if self.threads.iter().all(|t| t.status == ThreadStatus::Done) {
                break;
            }
            if self.barrier_arrived == self.threads.len() {
                self.release_barrier(tracked);
                continue;
            }
            match self.pick_node(tracked) {
                Some(n) => self.step_node(n, tracked),
                None => return Err(DsmError::Deadlock { iteration }),
            }
        }

        if tracked {
            let sweep = self.config.cost.protect_sweep(self.num_pages as u64);
            for node in &mut self.nodes {
                node.disarm_all_pages();
                node.time += sweep;
                node.pinned = None;
            }
        }
        // Nodes finished at the final barrier release; align on the max
        // (tracking disarm sweeps may have nudged them apart).
        let end = self.now();
        for node in &mut self.nodes {
            node.time = end;
        }
        self.cur.elapsed = end.saturating_since(start);
        self.total += self.cur;
        self.next_iteration += 1;
        if let Some(detail) = self.oracle.as_ref().and_then(|o| o.first_violation()) {
            return Err(DsmError::OracleViolation {
                iteration,
                detail: detail.to_string(),
            });
        }
        Ok(self.cur)
    }

    /// Picks the progress-capable node with the smallest local time.
    fn pick_node(&self, tracked: bool) -> Option<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.node_can_progress(i, tracked))
            .min_by_key(|&i| (self.nodes[i].time, i))
    }

    fn node_can_progress(&self, i: usize, tracked: bool) -> bool {
        let node = &self.nodes[i];
        if tracked {
            let Some(p) = node.pinned else { return false };
            let t = node.threads[p];
            match self.threads[t].status {
                ThreadStatus::Ready => true,
                ThreadStatus::Blocked => self.threads[t].wake_at < SimTime::MAX,
                _ => false,
            }
        } else {
            node.threads.iter().any(|&t| match self.threads[t].status {
                ThreadStatus::Ready => true,
                ThreadStatus::Blocked => self.threads[t].wake_at < SimTime::MAX,
                _ => false,
            })
        }
    }

    fn step_node(&mut self, i: usize, tracked: bool) {
        if tracked {
            let p = self.nodes[i].pinned.expect("progressable pinned node");
            let t = self.nodes[i].threads[p];
            if self.threads[t].status == ThreadStatus::Blocked {
                // No sibling may run: latency is exposed, not hidden.
                let wake = self.threads[t].wake_at;
                let node = &mut self.nodes[i];
                node.time = node.time.max(wake);
                self.threads[t].status = ThreadStatus::Ready;
            }
            self.run_thread(i, t, tracked);
            return;
        }
        self.wake_eligible(i);
        if self.nodes[i].ready.is_empty() {
            // Advance to the earliest completion among blocked threads.
            let min_wake = self.nodes[i]
                .threads
                .iter()
                .filter(|&&t| {
                    self.threads[t].status == ThreadStatus::Blocked
                        && self.threads[t].wake_at < SimTime::MAX
                })
                .map(|&t| self.threads[t].wake_at)
                .min()
                .expect("progressable node has a finite wake");
            let node = &mut self.nodes[i];
            node.time = node.time.max(min_wake);
            self.wake_eligible(i);
        }
        let t = if self.policy.is_some() && self.nodes[i].ready.len() > 1 {
            let alternatives = self.nodes[i].ready.len();
            let node = self.nodes[i].id;
            let c = self.decide(i, DecisionPoint::Run { node }, alternatives);
            self.nodes[i].ready.remove(c).expect("choice in range")
        } else {
            let Some(t) = self.nodes[i].ready.pop_front() else {
                return;
            };
            t
        };
        if self.nodes[i].last_ran != Some(t) {
            self.nodes[i].time += self.config.cost.context_switch;
            self.nodes[i].last_ran = Some(t);
        }
        self.run_thread(i, t, tracked);
    }

    /// Moves blocked local threads whose wake time has passed to the ready
    /// queue, in thread order.
    fn wake_eligible(&mut self, i: usize) {
        let now = self.nodes[i].time;
        let locals = self.nodes[i].threads.clone();
        for t in locals {
            if self.threads[t].status == ThreadStatus::Blocked && self.threads[t].wake_at <= now {
                self.threads[t].status = ThreadStatus::Ready;
                self.nodes[i].ready.push_back(t);
            }
        }
    }

    /// Runs thread `t` on node `i` until it blocks, parks, or finishes.
    fn run_thread(&mut self, i: usize, t: usize, tracked: bool) {
        loop {
            if self.threads[t].finished() {
                self.threads[t].status = ThreadStatus::Done;
                return;
            }
            let op = self.threads[t].script[self.threads[t].pc];
            match op {
                Op::Compute { ns } => {
                    self.nodes[i].time += SimDuration::from_nanos(ns);
                    self.threads[t].pc += 1;
                }
                Op::Read { addr, len } | Op::Write { addr, len } => {
                    let kind = if matches!(op, Op::Write { .. }) {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    if self.threads[t].ongoing.is_none() {
                        let spans: Vec<PageSpan> = span_pages(addr, len).collect();
                        if spans.is_empty() {
                            self.threads[t].pc += 1;
                            continue;
                        }
                        self.threads[t].ongoing = Some(OngoingAccess {
                            kind,
                            spans,
                            next: 0,
                        });
                    }
                    loop {
                        let ongoing = self.threads[t].ongoing.as_ref().expect("set above");
                        if ongoing.next >= ongoing.spans.len() {
                            self.threads[t].ongoing = None;
                            self.threads[t].pc += 1;
                            break;
                        }
                        let span = ongoing.spans[ongoing.next];
                        let kind = ongoing.kind;
                        match self.access_page(i, t, span, kind, tracked) {
                            AccessOutcome::Proceed => {
                                self.threads[t]
                                    .ongoing
                                    .as_mut()
                                    .expect("still ongoing")
                                    .next += 1;
                            }
                            AccessOutcome::Block(dur) => {
                                self.cur.stall += dur;
                                self.threads[t].wake_at = self.nodes[i].time + dur;
                                self.threads[t].status = ThreadStatus::Blocked;
                                return;
                            }
                            AccessOutcome::BlockCompleted(dur) => {
                                self.threads[t]
                                    .ongoing
                                    .as_mut()
                                    .expect("still ongoing")
                                    .next += 1;
                                self.cur.stall += dur;
                                self.threads[t].wake_at = self.nodes[i].time + dur;
                                self.threads[t].status = ThreadStatus::Blocked;
                                return;
                            }
                        }
                    }
                }
                Op::Barrier => {
                    self.threads[t].status = ThreadStatus::AtBarrier;
                    self.barrier_arrived += 1;
                    if tracked {
                        self.advance_pin(i);
                    }
                    return;
                }
                Op::Lock(l) => {
                    if self.acquire_lock(i, t, l) {
                        continue;
                    }
                    return;
                }
                Op::Unlock(l) => {
                    self.release_lock(i, t, l);
                    self.threads[t].pc += 1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Memory access
    // ------------------------------------------------------------------

    fn access_page(
        &mut self,
        i: usize,
        t: usize,
        span: PageSpan,
        kind: AccessKind,
        tracked: bool,
    ) -> AccessOutcome {
        let page = span.page;
        // Correlation fault (active tracking).
        if tracked && self.nodes[i].pages.corr_armed(page.idx()) {
            self.nodes[i].pages.disarm(page.idx());
            self.tracking
                .as_mut()
                .expect("tracking matrix present while tracked")
                .record(t, page);
            self.nodes[i].time += self.config.cost.tracking_fault;
            self.nodes[i].tracking_faults += 1;
            self.cur.tracking_faults += 1;
            self.emit(i, Event::CorrelationFault { thread: t, page });
        }
        if let WriteMode::SingleWriter { delta } = self.config.write_mode {
            let outcome = self.access_page_sw(i, t, span, kind, delta);
            // Every single-writer outcome except a plain retrying block
            // completes the access (see `AccessOutcome::BlockCompleted`).
            if !matches!(outcome, AccessOutcome::Block(_)) {
                self.observe_access(t, span, kind);
            }
            return outcome;
        }
        // Coherence fault: fetch a current copy.
        if !self.nodes[i].pages.valid(page.idx()) {
            self.record_miss(i, t, page);
            let fetch_start = self.nodes[i].time;
            let applied = self.nodes[i].pages.applied_version(page.idx());
            let has_copy = self.nodes[i].pages.has_copy(page.idx());
            // Fill the reusable scratch plan in place; take/put-back keeps
            // the borrow checker out of the `net_send` calls below.
            let mut plan = std::mem::take(&mut self.plan_scratch);
            self.directory
                .fetch_plan_into(page, self.nodes[i].id, applied, has_copy, &mut plan);
            let mut dur = SimDuration::ZERO;
            if let Some(src) = plan.full_page_from {
                let bytes = acorr_mem::PAGE_SIZE as u64;
                let base = self.config.network.transfer_time(bytes);
                dur += self.net_send(i, MessageKind::PageFetch, bytes, base, Some(src.idx()));
            }
            for d in &plan.diffs {
                let base = self.config.network.transfer_time(d.bytes);
                dur += self.net_send(i, MessageKind::DiffFetch, d.bytes, base, Some(d.node.idx()));
            }
            let apply = self.config.cost.diff_apply(plan.diff_bytes());
            self.nodes[i].time += apply;
            let pages = &mut self.nodes[i].pages;
            pages.set_valid(page.idx(), true);
            pages.set_has_copy(page.idx(), true);
            pages.set_applied_version(page.idx(), plan.new_version);
            if pages.prot(page.idx()) == Protection::None {
                pages.set_prot(page.idx(), Protection::Read);
            }
            if let Some(o) = self.oracle.as_mut() {
                o.on_fetch(i, page, plan.new_version);
            }
            self.plan_scratch = plan;
            self.emit_fetch_latency(i, dur);
            self.emit_span(i, SpanPhase::Fetch, fetch_start, dur + apply);
            self.emit_span(i, SpanPhase::Apply, fetch_start + dur, apply);
            return AccessOutcome::Block(dur);
        }
        // Write fault: twin on first write of the interval.
        if kind == AccessKind::Write {
            let needs_twin = !self.nodes[i].pages.twin(page.idx());
            if needs_twin {
                self.cur.twin_faults += 1;
                let twin_start = self.nodes[i].time;
                self.nodes[i].time += self.config.cost.twin_create;
                self.nodes[i].pages.set_twin(page.idx(), true);
                self.nodes[i]
                    .pages
                    .set_prot(page.idx(), Protection::ReadWrite);
                self.nodes[i].write_set.push(page);
                self.emit(
                    i,
                    Event::WriteFault {
                        node: self.nodes[i].id,
                        page,
                    },
                );
                self.emit_span(
                    i,
                    SpanPhase::TwinCreate,
                    twin_start,
                    self.config.cost.twin_create,
                );
            }
            self.nodes[i]
                .pages
                .dirty_mut(page.idx())
                .insert(span.start, span.end);
            if let Some(o) = self.oracle.as_mut() {
                o.on_write(i, t, span);
            }
            if !self.threads[t].held_locks.is_empty()
                && !self.threads[t].lock_writes.contains(&page)
            {
                self.threads[t].lock_writes.push(page);
            }
        }
        // Multi-writer accesses complete exactly once on this path (the
        // fetch above blocks and *retries* the span).
        self.observe_access(t, span, kind);
        AccessOutcome::Proceed
    }

    /// Single-writer protocol access path (Mirage-style, §6): one writable
    /// copy at a time, ownership migrates on write faults, and a freshly
    /// transferred page is frozen at its owner for the delta interval.
    fn access_page_sw(
        &mut self,
        i: usize,
        t: usize,
        span: PageSpan,
        kind: AccessKind,
        delta: SimDuration,
    ) -> AccessOutcome {
        let page = span.page;
        let node_id = self.nodes[i].id;
        let is_owner = self.directory.page(page).owner == node_id;
        let valid = self.nodes[i].pages.valid(page.idx());
        match kind {
            AccessKind::Read => {
                if valid {
                    return AccessOutcome::Proceed;
                }
                self.record_miss(i, t, page);
                let now = self.nodes[i].time;
                let stall = self
                    .directory
                    .page(page)
                    .sw_frozen_until
                    .saturating_since(now);
                let owner = self.directory.page(page).owner;
                let bytes = acorr_mem::PAGE_SIZE as u64;
                let base = self.config.network.transfer_time(bytes);
                let transfer =
                    self.net_send(i, MessageKind::PageFetch, bytes, base, Some(owner.idx()));
                // The owner is downgraded so its next write faults and
                // re-invalidates this reader.
                if owner != node_id {
                    let opages = &mut self.nodes[owner.idx()].pages;
                    if opages.prot(page.idx()) == Protection::ReadWrite {
                        opages.set_prot(page.idx(), Protection::Read);
                    }
                }
                let pages = &mut self.nodes[i].pages;
                pages.set_valid(page.idx(), true);
                pages.set_has_copy(page.idx(), true);
                pages.set_prot(page.idx(), Protection::Read);
                if let Some(o) = self.oracle.as_mut() {
                    o.on_fetch_sw(i, page);
                }
                self.emit_fetch_latency(i, stall + transfer);
                self.emit_span(i, SpanPhase::Fetch, now, stall + transfer);
                AccessOutcome::BlockCompleted(stall + transfer)
            }
            AccessKind::Write => {
                if is_owner && valid {
                    if self.nodes[i].pages.prot(page.idx()) != Protection::ReadWrite {
                        // Local re-upgrade: invalidate the reader copies.
                        self.cur.twin_faults += 1;
                        let twin_start = self.nodes[i].time;
                        self.nodes[i].time += self.config.cost.twin_create;
                        self.invalidate_others_sw(i, page);
                        self.nodes[i]
                            .pages
                            .set_prot(page.idx(), Protection::ReadWrite);
                        self.nodes[i].write_set.push(page);
                        self.emit(
                            i,
                            Event::WriteFault {
                                node: self.nodes[i].id,
                                page,
                            },
                        );
                        self.emit_span(
                            i,
                            SpanPhase::TwinCreate,
                            twin_start,
                            self.config.cost.twin_create,
                        );
                    }
                    if let Some(o) = self.oracle.as_mut() {
                        o.on_write(i, t, span);
                    }
                    return AccessOutcome::Proceed;
                }
                // Ownership transfer (steal), delayed by the freeze.
                self.record_miss(i, t, page);
                self.cur.ownership_transfers += 1;
                let now = self.nodes[i].time;
                let stall = self
                    .directory
                    .page(page)
                    .sw_frozen_until
                    .saturating_since(now);
                let old_owner = self.directory.page(page).owner;
                let bytes = acorr_mem::PAGE_SIZE as u64;
                let base = self.config.network.transfer_time(bytes);
                let transfer = self.net_send(
                    i,
                    MessageKind::PageFetch,
                    bytes,
                    base,
                    Some(old_owner.idx()),
                );
                self.invalidate_others_sw(i, page);
                let wake = now + stall + transfer;
                self.directory
                    .transfer_ownership(page, node_id, wake + delta);
                self.emit(i, Event::OwnershipTransfer { page, to: node_id });
                let pages = &mut self.nodes[i].pages;
                pages.set_valid(page.idx(), true);
                pages.set_has_copy(page.idx(), true);
                pages.set_prot(page.idx(), Protection::ReadWrite);
                self.nodes[i].write_set.push(page);
                if let Some(o) = self.oracle.as_mut() {
                    o.on_fetch_sw(i, page);
                    o.on_write(i, t, span);
                }
                self.emit_fetch_latency(i, stall + transfer);
                self.emit_span(i, SpanPhase::Fetch, now, stall + transfer);
                AccessOutcome::BlockCompleted(stall + transfer)
            }
        }
    }

    /// Miss bookkeeping shared by both protocols.
    fn record_miss(&mut self, i: usize, t: usize, page: PageId) {
        self.cur.remote_misses += 1;
        self.cur.coherence_faults += 1;
        self.nodes[i].remote_misses += 1;
        self.nodes[i].time += self.config.cost.coherence_fault;
        if let Some(passive) = self.passive.as_mut() {
            passive.record(t, page);
        }
        self.emit(
            i,
            Event::RemoteMiss {
                node: self.nodes[i].id,
                thread: t,
                page,
            },
        );
    }

    /// Invalidates every other node's copy of `page` (single-writer
    /// protocol), with write-notice accounting.
    fn invalidate_others_sw(&mut self, i: usize, page: PageId) {
        // The planted partition-tolerance bug: invalidations crossing an
        // active cut are silently dropped instead of queued for the heal.
        let lose_across = match self.config.inject {
            Some(InjectedBug::LosePartitionedInvalidations) => self.partition_split,
            None => None,
        };
        let mut invalidated = 0u64;
        for (j, node) in self.nodes.iter_mut().enumerate() {
            if j != i
                && node.pages.valid(page.idx())
                && lose_across.is_none_or(|split| (i < split) == (j < split))
            {
                node.pages.set_valid(page.idx(), false);
                node.pages.set_prot(page.idx(), Protection::None);
                invalidated += 1;
            }
        }
        for _ in 0..invalidated {
            let extra = self.net_send_extra(i, MessageKind::WriteNotice, NOTICE_BYTES, None);
            self.nodes[i].time += extra;
        }
    }

    // ------------------------------------------------------------------
    // Synchronization
    // ------------------------------------------------------------------

    fn release_barrier(&mut self, tracked: bool) {
        self.cur.barriers += 1;
        let close_start = self.nodes[0].time;
        let barrier_index = self.total.barriers + self.cur.barriers - 1;
        self.emit(
            0,
            Event::BarrierRelease {
                index: barrier_index,
            },
        );
        if matches!(self.config.write_mode, WriteMode::SingleWriter { .. }) {
            // Single-writer invalidations are eager; nothing to finalize,
            // and there are no diffs to garbage-collect. Write sets only
            // drive a barrier version bump for the statistics.
            for node in &mut self.nodes {
                node.write_set.clear();
            }
        } else {
            // Finalize every node's write intervals (creates diffs, sends
            // write notices, invalidates remote copies). Write sets are
            // bump-copied into the interval arena so both the node's vector
            // and the arena keep their capacity across intervals.
            for i in 0..self.nodes.len() {
                let range = self.interval_arena.take_from(&mut self.nodes[i].write_set);
                for k in range.indices() {
                    let page = self.interval_arena.at(k);
                    self.finalize_page(i, page);
                }
            }
            if self.directory.pending_records() > self.config.gc_diff_threshold {
                self.run_gc();
            }
        }
        // The barrier closes the interval: every arena range handed out
        // since the last barrier (write sets above, lock-write records) is
        // dead, so the whole buffer resets in one length store.
        self.interval_arena.reset();
        // Conformance check: every page's visible contents must match the
        // sequential reference memory now that write intervals are closed.
        if let Some(o) = self.oracle.as_mut() {
            o.check_barrier(&self.nodes, &self.directory);
        }
        // Differential checking: the protocol-independent visible-memory
        // model must agree with the oracle's committed image, then both the
        // model and the race detector roll into the next interval.
        if let Some(v) = self.visible.as_ref() {
            if let Some(o) = self.oracle.as_mut() {
                o.check_visible(v);
            }
        }
        if let Some(v) = self.visible.as_mut() {
            v.on_barrier();
        }
        if let Some(r) = self.race.as_mut() {
            r.on_barrier();
        }
        // Rendezvous: each non-root node reports in, the root releases.
        // Fault-injected delays on these control messages push out the
        // sender's arrival (and with it the release time).
        for j in 1..self.nodes.len() {
            let extra = self.net_send_extra(j, MessageKind::Barrier, BARRIER_MSG_BYTES, Some(0));
            self.nodes[j].time += extra;
            let extra = self.net_send_extra(0, MessageKind::Barrier, BARRIER_MSG_BYTES, Some(j));
            self.nodes[0].time += extra;
        }
        let n = self.nodes.len() as u64;
        let release = self
            .nodes
            .iter()
            .map(|nd| nd.time)
            .max()
            .expect("at least one node")
            + self.config.cost.barrier(n);
        for node in &mut self.nodes {
            node.time = release;
            node.ready.clear();
        }
        // Span: barrier close covers finalization through release, on the
        // root node's lane.
        self.emit_span(
            0,
            SpanPhase::BarrierClose,
            close_start,
            release.saturating_since(close_start),
        );
        // Observability: emit the per-interval statistics delta at the
        // release time, then re-mark. Purely observational — no simulated
        // cost is charged and no engine state other than the mark changes.
        if self.sink.is_some() {
            let mut delta = self.cur - self.interval_mark;
            delta.elapsed = release.saturating_since(self.interval_start);
            if let Some(sink) = self.sink.as_mut() {
                sink.record_interval(release, barrier_index, &delta);
            }
            self.interval_mark = self.cur;
            self.interval_start = release;
        }
        // Wake the world.
        self.barrier_arrived = 0;
        for t in 0..self.threads.len() {
            if self.threads[t].status == ThreadStatus::AtBarrier {
                self.threads[t].pc += 1;
                if self.threads[t].finished() {
                    self.threads[t].status = ThreadStatus::Done;
                } else {
                    self.threads[t].status = ThreadStatus::Ready;
                    let node = self.threads[t].node;
                    self.nodes[node.idx()].ready.push_back(t);
                }
            }
        }
        // Tracking: restart each node's sequential sweep at its first live
        // thread and re-arm the correlation bits.
        if tracked {
            let sweep = self.config.cost.protect_sweep(self.num_pages as u64);
            for node in &mut self.nodes {
                let next = node
                    .threads
                    .iter()
                    .position(|&t| self.threads[t].status != ThreadStatus::Done);
                node.pinned = next;
                if next.is_some() {
                    node.arm_all_pages();
                    node.time += sweep;
                }
            }
        }
        // The release opens the next interval: decide its fault action
        // (the oracle just checked the pre-crash state above, so a crash
        // here is validated at the *next* barrier). The final barrier of an
        // iteration opens nothing — the next `run_one` does.
        if self.threads.iter().any(|t| t.status != ThreadStatus::Done) {
            self.begin_fault_interval();
        }
    }

    /// After the pinned thread parks at a barrier, hand the node to its next
    /// live thread and re-arm the correlation bits (the per-switch
    /// protection restore the paper charges for).
    fn advance_pin(&mut self, i: usize) {
        let node = &self.nodes[i];
        let start = node.pinned.map_or(0, |p| p + 1);
        let next = (start..node.threads.len()).find(|&p| {
            let t = node.threads[p];
            !matches!(
                self.threads[t].status,
                ThreadStatus::AtBarrier | ThreadStatus::Done
            )
        });
        let node = &mut self.nodes[i];
        node.pinned = next;
        if next.is_some() {
            node.arm_all_pages();
            node.time += self.config.cost.protect_sweep(self.num_pages as u64)
                + self.config.cost.context_switch;
        }
    }

    /// Ends a node's write interval on one page: creates the diff, files the
    /// write notice, invalidates other replicas.
    fn finalize_page(&mut self, i: usize, page: PageId) {
        if matches!(self.config.write_mode, WriteMode::SingleWriter { .. }) {
            return; // single-writer invalidations are eager
        }
        let pages = &self.nodes[i].pages;
        if !pages.twin(page.idx()) && pages.dirty(page.idx()).is_empty() {
            return; // already finalized (e.g. at an earlier unlock)
        }
        let dirty_len = pages.dirty(page.idx()).total_len();
        let fragments = pages.dirty(page.idx()).fragment_count();
        let bytes = dirty_len + DIFF_RANGE_BYTES * fragments as u64 + DIFF_HEADER_BYTES;
        let build = self.config.cost.diff_create(bytes);
        let build_start = self.nodes[i].time;
        self.nodes[i].time += build;
        let ver = self.directory.record_diff(page, self.nodes[i].id, bytes);
        self.cur.diffs_created += 1;
        self.cur.diff_bytes_created += bytes;
        self.emit(
            i,
            Event::DiffCreated {
                node: self.nodes[i].id,
                page,
                bytes,
            },
        );
        self.emit_span(i, SpanPhase::DiffBuild, build_start, build);
        let extra = self.net_send_extra(i, MessageKind::WriteNotice, NOTICE_BYTES, None);
        self.nodes[i].time += extra;
        let pages = &mut self.nodes[i].pages;
        pages.set_twin(page.idx(), false);
        pages.dirty_mut(page.idx()).clear();
        if pages.prot(page.idx()) == Protection::ReadWrite {
            pages.set_prot(page.idx(), Protection::Read);
        }
        // Invalidate every other replica; a concurrent writer keeps its twin
        // and will merge on its next fetch. Under the planted bug, notices
        // crossing an active partition cut are silently lost.
        let lose_across = match self.config.inject {
            Some(InjectedBug::LosePartitionedInvalidations) => self.partition_split,
            None => None,
        };
        for (j, node) in self.nodes.iter_mut().enumerate() {
            if j != i
                && node.pages.valid(page.idx())
                && lose_across.is_none_or(|split| (i < split) == (j < split))
            {
                node.pages.set_valid(page.idx(), false);
                node.pages.set_prot(page.idx(), Protection::None);
            }
        }
        // A still-valid single writer now reflects the newest version.
        let pages = &mut self.nodes[i].pages;
        let still_valid = pages.valid(page.idx());
        if still_valid {
            pages.set_applied_version(page.idx(), ver);
        }
        if let Some(o) = self.oracle.as_mut() {
            o.on_finalize(i, page, dirty_len, fragments, ver, still_valid);
        }
    }

    /// Garbage collection: consolidate every page's pending diffs at its
    /// last writer and invalidate the other replicas (§2's source of extra
    /// remote faults).
    fn run_gc(&mut self) {
        self.cur.gc_runs += 1;
        for page in self.directory.pages_with_diffs() {
            let owner = self
                .directory
                .page(page)
                .diffs
                .last()
                .expect("page listed with diffs")
                .node;
            let oi = owner.idx();
            let applied = self.nodes[oi].pages.applied_version(page.idx());
            let has_copy = self.nodes[oi].pages.has_copy(page.idx());
            let mut plan = std::mem::take(&mut self.plan_scratch);
            self.directory
                .fetch_plan_into(page, owner, applied, has_copy, &mut plan);
            if let Some(src) = plan.full_page_from {
                let bytes = acorr_mem::PAGE_SIZE as u64;
                let base = self.config.network.transfer_time(bytes);
                let dur = self.net_send(oi, MessageKind::Gc, bytes, base, Some(src.idx()));
                self.nodes[oi].time += dur;
            }
            for d in &plan.diffs {
                let base = self.config.network.transfer_time(d.bytes);
                let dur = self.net_send(oi, MessageKind::Gc, d.bytes, base, Some(d.node.idx()));
                self.nodes[oi].time += dur;
            }
            self.nodes[oi].time += self.config.cost.diff_apply(plan.diff_bytes());
            let pages = &mut self.nodes[oi].pages;
            pages.set_valid(page.idx(), true);
            pages.set_has_copy(page.idx(), true);
            pages.set_applied_version(page.idx(), plan.new_version);
            if pages.prot(page.idx()) == Protection::None {
                pages.set_prot(page.idx(), Protection::Read);
            }
            if let Some(o) = self.oracle.as_mut() {
                o.on_fetch(oi, page, plan.new_version);
            }
            self.plan_scratch = plan;
            self.directory.consolidate(page, owner);
            self.cur.gc_pages += 1;
            self.emit(oi, Event::GcConsolidated { page, owner });
            for (j, node) in self.nodes.iter_mut().enumerate() {
                if j != oi && node.pages.valid(page.idx()) {
                    node.pages.set_valid(page.idx(), false);
                    node.pages.set_prot(page.idx(), Protection::None);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Locks
    // ------------------------------------------------------------------

    /// Attempts to acquire `l` for thread `t`. Returns `true` when the
    /// thread may keep running synchronously; `false` when it blocked.
    fn acquire_lock(&mut self, i: usize, t: usize, l: LockId) -> bool {
        let node_id = self.nodes[i].id;
        if self.locks[l.idx()].holder.is_some() {
            self.locks[l.idx()].queue.push_back(t);
            self.threads[t].status = ThreadStatus::Blocked;
            self.threads[t].wake_at = SimTime::MAX;
            return false;
        }
        self.cur.lock_acquires += 1;
        let lock = &mut self.locks[l.idx()];
        lock.holder = Some(t);
        let remote = lock.last_node.is_some() && lock.last_node != Some(node_id);
        lock.last_node = Some(node_id);
        let grant_base = self.nodes[i].time.max(lock.free_at);
        self.threads[t].held_locks.push(l);
        self.threads[t].pc += 1;
        if let Some(r) = self.race.as_mut() {
            r.on_lock_acquire(t, l.idx());
        }
        self.emit(
            i,
            Event::LockGranted {
                lock: l.idx(),
                thread: t,
                remote,
            },
        );
        if remote {
            self.cur.remote_lock_acquires += 1;
            let base = self.config.network.control_time();
            let delay = self.net_send(i, MessageKind::Lock, LOCK_MSG_BYTES, base, None)
                + self.net_send(i, MessageKind::Lock, LOCK_MSG_BYTES, base, None);
            self.threads[t].status = ThreadStatus::Blocked;
            self.cur.stall += delay;
            self.threads[t].wake_at = grant_base + delay;
            self.emit_lock_latency(i, delay);
            self.emit_span(i, SpanPhase::LockGrant, grant_base, delay);
            false
        } else {
            let node = &mut self.nodes[i];
            node.time = grant_base + self.config.cost.lock_local;
            let local = self.config.cost.lock_local;
            self.emit_lock_latency(i, local);
            self.emit_span(i, SpanPhase::LockGrant, grant_base, local);
            true
        }
    }

    fn release_lock(&mut self, i: usize, t: usize, l: LockId) {
        let popped = self.threads[t].held_locks.pop();
        debug_assert_eq!(popped, Some(l), "validated scripts unlock in order");
        // Eager-at-release: finalize the pages written under the lock so the
        // next acquirer sees them (the engine's stand-in for carrying write
        // notices with the lock grant).
        let range = self
            .interval_arena
            .take_from(&mut self.threads[t].lock_writes);
        for k in range.indices() {
            let page = self.interval_arena.at(k);
            self.finalize_page(i, page);
        }
        // Conformance check: everything written under the lock must now be
        // published for the next acquirer.
        if let Some(o) = self.oracle.as_mut() {
            o.check_lock_release(i, self.interval_arena.get(range), &self.directory);
        }
        if let Some(r) = self.race.as_mut() {
            r.on_lock_release(t, l.idx());
        }
        let now = self.nodes[i].time;
        let lock = &mut self.locks[l.idx()];
        lock.holder = None;
        lock.free_at = now;
        let next = if self.policy.is_some() && self.locks[l.idx()].queue.len() > 1 {
            let alternatives = self.locks[l.idx()].queue.len();
            let c = self.decide(i, DecisionPoint::Grant { lock: l.idx() }, alternatives);
            self.locks[l.idx()].queue.remove(c)
        } else {
            self.locks[l.idx()].queue.pop_front()
        };
        if let Some(next) = next {
            self.grant_queued(next, l, now);
        }
    }

    fn grant_queued(&mut self, t: usize, l: LockId, unlock_time: SimTime) {
        self.cur.lock_acquires += 1;
        let node_id = self.threads[t].node;
        let lock = &mut self.locks[l.idx()];
        lock.holder = Some(t);
        let remote = lock.last_node != Some(node_id);
        lock.last_node = Some(node_id);
        let delay = if remote {
            self.cur.remote_lock_acquires += 1;
            let ni = node_id.idx();
            let base = self.config.network.control_time();
            self.net_send(ni, MessageKind::Lock, LOCK_MSG_BYTES, base, None)
                + self.net_send(ni, MessageKind::Lock, LOCK_MSG_BYTES, base, None)
        } else {
            self.config.cost.lock_local
        };
        self.threads[t].held_locks.push(l);
        self.threads[t].pc += 1;
        if let Some(r) = self.race.as_mut() {
            r.on_lock_acquire(t, l.idx());
        }
        self.threads[t].status = ThreadStatus::Blocked;
        self.cur.stall += delay;
        self.threads[t].wake_at = unlock_time + delay;
        let node = self.threads[t].node.idx();
        self.emit(
            node,
            Event::LockGranted {
                lock: l.idx(),
                thread: t,
                remote,
            },
        );
        self.emit_lock_latency(node, delay);
        self.emit_span(node, SpanPhase::LockGrant, unlock_time, delay);
    }
}
