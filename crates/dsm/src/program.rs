//! The program model.
//!
//! Applications run against the DSM through a CVM-like API: they read and
//! write ranges of a flat shared address space and synchronize with barriers
//! and locks. A [`Program`] describes, for every `(thread, iteration)` pair,
//! the [`Op`] sequence that thread executes — the same information a real
//! application would generate by running, but in replayable form so the
//! engine, the tracking mechanisms and the experiments are deterministic.
//!
//! Correlation tracking observes *which pages a thread touches between
//! synchronizations*; replaying each application's data layout, partition and
//! communication pattern therefore reproduces exactly the signal the paper
//! measures (see DESIGN.md §1).

use std::fmt;

/// Identifies one application lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LockId(pub u16);

impl LockId {
    /// The lock's index, for use with slices.
    pub const fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// One step of a thread's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Load `len` bytes starting at shared address `addr`.
    Read {
        /// Starting shared address.
        addr: u64,
        /// Bytes read.
        len: u64,
    },
    /// Store `len` bytes starting at shared address `addr`.
    Write {
        /// Starting shared address.
        addr: u64,
        /// Bytes written.
        len: u64,
    },
    /// Spin the CPU for `ns` nanoseconds of local computation.
    Compute {
        /// Nanoseconds of work.
        ns: u64,
    },
    /// Wait for every thread in the application.
    Barrier,
    /// Acquire an application lock.
    Lock(LockId),
    /// Release an application lock.
    Unlock(LockId),
}

impl Op {
    /// Convenience constructor for a read.
    pub const fn read(addr: u64, len: u64) -> Op {
        Op::Read { addr, len }
    }

    /// Convenience constructor for a write.
    pub const fn write(addr: u64, len: u64) -> Op {
        Op::Write { addr, len }
    }

    /// Convenience constructor for compute time.
    pub const fn compute(ns: u64) -> Op {
        Op::Compute { ns }
    }
}

/// A deterministic multi-threaded DSM application.
///
/// Implementations describe the shared-memory footprint and, per thread and
/// iteration, the operation script. Scripts must be *barrier-aligned*: every
/// thread's script for a given iteration must contain the same number of
/// [`Op::Barrier`]s (the engine appends an implicit barrier at the end of
/// each iteration). Lock/unlock pairs must be properly matched within one
/// iteration.
pub trait Program {
    /// Human-readable application name (e.g. `"SOR"`).
    fn name(&self) -> &str;

    /// Size of the shared address space in bytes. Accesses beyond this are
    /// rejected by the engine.
    fn shared_bytes(&self) -> u64;

    /// Total number of threads the program is configured for.
    fn num_threads(&self) -> usize;

    /// Number of application locks (lock ids must be `< num_locks`).
    fn num_locks(&self) -> usize {
        0
    }

    /// Default number of iterations for a full run.
    fn default_iterations(&self) -> usize {
        10
    }

    /// The operation script of `thread` during `iteration`.
    fn script(&self, thread: usize, iteration: usize) -> Vec<Op>;
}

impl<P: Program + ?Sized> Program for &P {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn shared_bytes(&self) -> u64 {
        (**self).shared_bytes()
    }
    fn num_threads(&self) -> usize {
        (**self).num_threads()
    }
    fn num_locks(&self) -> usize {
        (**self).num_locks()
    }
    fn default_iterations(&self) -> usize {
        (**self).default_iterations()
    }
    fn script(&self, thread: usize, iteration: usize) -> Vec<Op> {
        (**self).script(thread, iteration)
    }
}

impl<P: Program + ?Sized> Program for Box<P> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn shared_bytes(&self) -> u64 {
        (**self).shared_bytes()
    }
    fn num_threads(&self) -> usize {
        (**self).num_threads()
    }
    fn num_locks(&self) -> usize {
        (**self).num_locks()
    }
    fn default_iterations(&self) -> usize {
        (**self).default_iterations()
    }
    fn script(&self, thread: usize, iteration: usize) -> Vec<Op> {
        (**self).script(thread, iteration)
    }
}

/// Problems detected while validating a script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptError {
    /// Threads disagree on barrier counts within one iteration.
    BarrierMismatch {
        /// The iteration in question.
        iteration: usize,
        /// Barrier count of thread 0.
        expected: usize,
        /// The offending thread.
        thread: usize,
        /// That thread's barrier count.
        got: usize,
    },
    /// An access referenced memory beyond [`Program::shared_bytes`].
    OutOfBounds {
        /// The offending thread.
        thread: usize,
        /// Access address.
        addr: u64,
        /// Access length.
        len: u64,
        /// The shared-space size.
        shared_bytes: u64,
    },
    /// An `Unlock` without a matching `Lock`, or vice versa.
    LockMismatch {
        /// The offending thread.
        thread: usize,
        /// The lock involved.
        lock: LockId,
    },
    /// A lock id outside `0..num_locks`.
    UnknownLock {
        /// The offending thread.
        thread: usize,
        /// The lock involved.
        lock: LockId,
    },
    /// A lock held across a barrier — illegal because active tracking runs
    /// each thread barrier-to-barrier atomically (§4.2), and a held lock
    /// would deadlock the pinned scheduler.
    LockAcrossBarrier {
        /// The offending thread.
        thread: usize,
        /// The lock involved.
        lock: LockId,
    },
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::BarrierMismatch {
                iteration,
                expected,
                thread,
                got,
            } => write!(
                f,
                "iteration {iteration}: thread {thread} reaches {got} barriers, thread 0 reaches {expected}"
            ),
            ScriptError::OutOfBounds {
                thread,
                addr,
                len,
                shared_bytes,
            } => write!(
                f,
                "thread {thread}: access [{addr}, {}) beyond shared space of {shared_bytes} bytes",
                addr + len
            ),
            ScriptError::LockMismatch { thread, lock } => {
                write!(f, "thread {thread}: unbalanced lock/unlock on {lock}")
            }
            ScriptError::UnknownLock { thread, lock } => {
                write!(f, "thread {thread}: lock id {lock} out of range")
            }
            ScriptError::LockAcrossBarrier { thread, lock } => {
                write!(f, "thread {thread}: holds {lock} across a barrier")
            }
        }
    }
}

impl std::error::Error for ScriptError {}

/// Validates one iteration's scripts across all threads: barrier alignment,
/// bounds, lock pairing.
///
/// # Errors
///
/// Returns the first [`ScriptError`] found.
pub fn validate_iteration<P: Program + ?Sized>(
    program: &P,
    iteration: usize,
) -> Result<(), ScriptError> {
    let shared = program.shared_bytes();
    let locks = program.num_locks();
    let mut expected_barriers = None;
    for thread in 0..program.num_threads() {
        let script = program.script(thread, iteration);
        let mut barriers = 0usize;
        let mut held: Vec<LockId> = Vec::new();
        for op in &script {
            match *op {
                Op::Barrier => {
                    if let Some(&lock) = held.last() {
                        return Err(ScriptError::LockAcrossBarrier { thread, lock });
                    }
                    barriers += 1;
                }
                Op::Read { addr, len } | Op::Write { addr, len } => {
                    if len > 0 && addr.checked_add(len).is_none_or(|end| end > shared) {
                        return Err(ScriptError::OutOfBounds {
                            thread,
                            addr,
                            len,
                            shared_bytes: shared,
                        });
                    }
                }
                Op::Lock(l) => {
                    if l.idx() >= locks {
                        return Err(ScriptError::UnknownLock { thread, lock: l });
                    }
                    held.push(l);
                }
                Op::Unlock(l) => {
                    if held.pop() != Some(l) {
                        return Err(ScriptError::LockMismatch { thread, lock: l });
                    }
                }
                Op::Compute { .. } => {}
            }
        }
        if let Some(l) = held.pop() {
            return Err(ScriptError::LockMismatch { thread, lock: l });
        }
        match expected_barriers {
            None => expected_barriers = Some(barriers),
            Some(expected) if expected != barriers => {
                return Err(ScriptError::BarrierMismatch {
                    iteration,
                    expected,
                    thread,
                    got: barriers,
                });
            }
            Some(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny two-thread program for validation tests.
    struct Toy {
        scripts: Vec<Vec<Op>>,
        locks: usize,
    }

    impl Program for Toy {
        fn name(&self) -> &str {
            "toy"
        }
        fn shared_bytes(&self) -> u64 {
            8192
        }
        fn num_threads(&self) -> usize {
            self.scripts.len()
        }
        fn num_locks(&self) -> usize {
            self.locks
        }
        fn script(&self, thread: usize, _iteration: usize) -> Vec<Op> {
            self.scripts[thread].clone()
        }
    }

    #[test]
    fn aligned_scripts_validate() {
        let toy = Toy {
            scripts: vec![
                vec![Op::read(0, 100), Op::Barrier, Op::write(4096, 10)],
                vec![Op::compute(50), Op::Barrier],
            ],
            locks: 0,
        };
        assert!(validate_iteration(&toy, 0).is_ok());
    }

    #[test]
    fn barrier_mismatch_detected() {
        let toy = Toy {
            scripts: vec![vec![Op::Barrier], vec![]],
            locks: 0,
        };
        assert_eq!(
            validate_iteration(&toy, 0),
            Err(ScriptError::BarrierMismatch {
                iteration: 0,
                expected: 1,
                thread: 1,
                got: 0
            })
        );
    }

    #[test]
    fn out_of_bounds_detected() {
        let toy = Toy {
            scripts: vec![vec![Op::read(8190, 10)]],
            locks: 0,
        };
        assert!(matches!(
            validate_iteration(&toy, 0),
            Err(ScriptError::OutOfBounds { thread: 0, .. })
        ));
    }

    #[test]
    fn overflowing_access_detected() {
        let toy = Toy {
            scripts: vec![vec![Op::read(u64::MAX - 1, 10)]],
            locks: 0,
        };
        assert!(matches!(
            validate_iteration(&toy, 0),
            Err(ScriptError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn zero_length_access_at_end_is_fine() {
        let toy = Toy {
            scripts: vec![vec![Op::read(8192, 0)]],
            locks: 0,
        };
        assert!(validate_iteration(&toy, 0).is_ok());
    }

    #[test]
    fn lock_pairing_enforced() {
        let l = LockId(0);
        let unmatched_unlock = Toy {
            scripts: vec![vec![Op::Unlock(l)]],
            locks: 1,
        };
        assert!(matches!(
            validate_iteration(&unmatched_unlock, 0),
            Err(ScriptError::LockMismatch { .. })
        ));
        let dangling_lock = Toy {
            scripts: vec![vec![Op::Lock(l)]],
            locks: 1,
        };
        assert!(matches!(
            validate_iteration(&dangling_lock, 0),
            Err(ScriptError::LockMismatch { .. })
        ));
        let nested_wrong_order = Toy {
            scripts: vec![vec![
                Op::Lock(LockId(0)),
                Op::Lock(LockId(0)),
                Op::Unlock(LockId(0)),
                Op::Unlock(LockId(0)),
            ]],
            locks: 1,
        };
        assert!(validate_iteration(&nested_wrong_order, 0).is_ok());
    }

    #[test]
    fn unknown_lock_detected() {
        let toy = Toy {
            scripts: vec![vec![Op::Lock(LockId(3)), Op::Unlock(LockId(3))]],
            locks: 1,
        };
        assert_eq!(
            validate_iteration(&toy, 0),
            Err(ScriptError::UnknownLock {
                thread: 0,
                lock: LockId(3)
            })
        );
    }

    #[test]
    fn trait_objects_delegate() {
        let toy = Toy {
            scripts: vec![vec![Op::Barrier]],
            locks: 0,
        };
        let boxed: Box<dyn Program> = Box::new(toy);
        assert_eq!(boxed.name(), "toy");
        assert_eq!(boxed.num_threads(), 1);
        assert_eq!(boxed.script(0, 0), vec![Op::Barrier]);
        assert!(validate_iteration(&boxed, 0).is_ok());
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ScriptError::BarrierMismatch {
            iteration: 2,
            expected: 3,
            thread: 7,
            got: 1,
        };
        assert!(e.to_string().contains("thread 7"));
    }
}
