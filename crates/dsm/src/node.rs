//! Per-node state: page tables and the local scheduler's bookkeeping.

use acorr_mem::{PageId, PageTable};
use acorr_sim::{NodeId, SimTime};
use std::collections::VecDeque;

/// One node of the simulated cluster: page table, local virtual time, and
/// scheduler bookkeeping.
///
/// Page state lives in an SoA [`PageTable`]: the boolean flags are packed
/// bitset masks (whole-table sweeps are word fills) and the dirty state is
/// a dense array of word-chunked masks — see `acorr_mem::page` for the
/// field semantics.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// This node's identity.
    pub id: NodeId,
    /// The node's local virtual time.
    pub time: SimTime,
    /// Per-page protocol state, struct-of-arrays.
    pub pages: PageTable,
    /// Pages twinned this interval (candidates for diff finalization).
    pub write_set: Vec<PageId>,
    /// Local threads (global thread indices) in scheduling order.
    pub threads: Vec<usize>,
    /// Ready queue of local thread indices (positions in `threads`).
    pub ready: VecDeque<usize>,
    /// Active-tracking pin: only this local index may run, if set.
    pub pinned: Option<usize>,
    /// The local index that ran last (for context-switch accounting).
    pub last_ran: Option<usize>,
    /// Remote misses taken by this node's threads (cumulative).
    pub remote_misses: u64,
    /// Tracking faults taken by this node's threads (cumulative).
    pub tracking_faults: u64,
}

impl NodeState {
    /// Creates a node whose pages are all invalid (or all owned, for the
    /// initial owner node).
    pub fn new(id: NodeId, num_pages: usize, is_initial_owner: bool) -> Self {
        NodeState {
            id,
            time: SimTime::ZERO,
            pages: PageTable::new(num_pages, is_initial_owner),
            write_set: Vec::new(),
            threads: Vec::new(),
            ready: VecDeque::new(),
            pinned: None,
            last_ran: None,
            remote_misses: 0,
            tracking_faults: 0,
        }
    }

    /// Arms the correlation bit on every page (start of a tracking
    /// segment) — a word fill over the packed mask.
    pub fn arm_all_pages(&mut self) {
        self.pages.arm_all();
    }

    /// Clears every correlation bit (end of the tracking phase).
    pub fn disarm_all_pages(&mut self) {
        self.pages.disarm_all();
    }

    /// Number of local threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_mem::Protection;

    #[test]
    fn initial_owner_pages_are_valid() {
        let n = NodeState::new(NodeId(0), 3, true);
        assert!((0..3).all(|p| n.pages.valid(p) && n.pages.has_copy(p)));
        assert!((0..3).all(|p| n.pages.prot(p) == Protection::Read));
        let m = NodeState::new(NodeId(1), 3, false);
        assert!((0..3).all(|p| !m.pages.valid(p) && !m.pages.has_copy(p)));
        assert!((0..3).all(|p| m.pages.prot(p) == Protection::None));
    }

    #[test]
    fn arm_and_disarm_sweep_all_pages() {
        let mut n = NodeState::new(NodeId(0), 5, false);
        n.arm_all_pages();
        assert!((0..5).all(|p| n.pages.corr_armed(p)));
        n.disarm_all_pages();
        assert!((0..5).all(|p| !n.pages.corr_armed(p)));
    }
}
