//! Per-node state: page tables and the local scheduler's bookkeeping.

use acorr_mem::{PageId, Protection, RangeSet};
use acorr_sim::{NodeId, SimTime};
use std::collections::VecDeque;

/// One node's view of one shared page.
#[derive(Debug, Clone, Default)]
pub struct PageState {
    /// The local copy reflects the latest version it applied and no newer
    /// version exists that it is missing.
    pub valid: bool,
    /// The node holds *some* image of the page (possibly stale); governs
    /// whether a miss can be patched with diffs or needs the full page.
    pub has_copy: bool,
    /// Current protection.
    pub prot: Protection,
    /// The page version the local copy reflects.
    pub applied_version: u64,
    /// A twin exists: the page has been written this interval.
    pub twin: bool,
    /// Byte ranges written this interval (the future diff).
    pub dirty: RangeSet,
    /// Correlation bit: armed by active tracking; the next access by the
    /// pinned thread takes a correlation fault.
    pub corr_armed: bool,
}

impl PageState {
    /// An invalid page with no local copy.
    pub fn invalid() -> Self {
        PageState::default()
    }

    /// A valid, read-protected copy at version 0 (the initial owner's view).
    pub fn initial_owner() -> Self {
        PageState {
            valid: true,
            has_copy: true,
            prot: Protection::Read,
            applied_version: 0,
            twin: false,
            dirty: RangeSet::new(),
            corr_armed: false,
        }
    }
}

/// One node of the simulated cluster: page table, local virtual time, and
/// scheduler bookkeeping.
#[derive(Debug, Clone)]
pub struct NodeState {
    /// This node's identity.
    pub id: NodeId,
    /// The node's local virtual time.
    pub time: SimTime,
    /// Per-page state.
    pub pages: Vec<PageState>,
    /// Pages twinned this interval (candidates for diff finalization).
    pub write_set: Vec<PageId>,
    /// Local threads (global thread indices) in scheduling order.
    pub threads: Vec<usize>,
    /// Ready queue of local thread indices (positions in `threads`).
    pub ready: VecDeque<usize>,
    /// Active-tracking pin: only this local index may run, if set.
    pub pinned: Option<usize>,
    /// The local index that ran last (for context-switch accounting).
    pub last_ran: Option<usize>,
    /// Remote misses taken by this node's threads (cumulative).
    pub remote_misses: u64,
    /// Tracking faults taken by this node's threads (cumulative).
    pub tracking_faults: u64,
}

impl NodeState {
    /// Creates a node whose pages are all invalid (or all owned, for the
    /// initial owner node).
    pub fn new(id: NodeId, num_pages: usize, is_initial_owner: bool) -> Self {
        let pages = (0..num_pages)
            .map(|_| {
                if is_initial_owner {
                    PageState::initial_owner()
                } else {
                    PageState::invalid()
                }
            })
            .collect();
        NodeState {
            id,
            time: SimTime::ZERO,
            pages,
            write_set: Vec::new(),
            threads: Vec::new(),
            ready: VecDeque::new(),
            pinned: None,
            last_ran: None,
            remote_misses: 0,
            tracking_faults: 0,
        }
    }

    /// Arms the correlation bit on every page (start of a tracking segment).
    pub fn arm_all_pages(&mut self) {
        for p in &mut self.pages {
            p.corr_armed = true;
        }
    }

    /// Clears every correlation bit (end of the tracking phase).
    pub fn disarm_all_pages(&mut self) {
        for p in &mut self.pages {
            p.corr_armed = false;
        }
    }

    /// Number of local threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_owner_pages_are_valid() {
        let n = NodeState::new(NodeId(0), 3, true);
        assert!(n.pages.iter().all(|p| p.valid && p.has_copy));
        assert!(n.pages.iter().all(|p| p.prot == Protection::Read));
        let m = NodeState::new(NodeId(1), 3, false);
        assert!(m.pages.iter().all(|p| !p.valid && !p.has_copy));
        assert!(m.pages.iter().all(|p| p.prot == Protection::None));
    }

    #[test]
    fn arm_and_disarm_sweep_all_pages() {
        let mut n = NodeState::new(NodeId(0), 5, false);
        n.arm_all_pages();
        assert!(n.pages.iter().all(|p| p.corr_armed));
        n.disarm_all_pages();
        assert!(n.pages.iter().all(|p| !p.corr_armed));
    }
}
