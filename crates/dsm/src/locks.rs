//! Distributed application locks.
//!
//! Locks serialize across the cluster: a grant to a node other than the last
//! holder pays a network transfer (and, under lazy release consistency,
//! carries the write notices that make the releaser's modifications
//! visible — the engine finalizes the releaser's lock-interval writes at
//! unlock). Waiters queue FIFO in request-processing order.

use acorr_sim::{NodeId, SimTime};
use std::collections::VecDeque;

/// State of one application lock.
#[derive(Debug, Clone, Default)]
pub struct LockState {
    /// The thread (global index) currently holding the lock.
    pub holder: Option<usize>,
    /// The node of the last holder (grants to the same node are cheap).
    pub last_node: Option<NodeId>,
    /// When the lock last became free.
    pub free_at: SimTime,
    /// Threads (global indices) waiting for the lock, FIFO.
    pub queue: VecDeque<usize>,
}

impl LockState {
    /// A fresh, free lock.
    pub fn new() -> Self {
        LockState::default()
    }

    /// Whether the lock is currently held.
    pub fn is_held(&self) -> bool {
        self.holder.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_lock_is_free() {
        let l = LockState::new();
        assert!(!l.is_held());
        assert!(l.queue.is_empty());
        assert_eq!(l.last_node, None);
        assert_eq!(l.free_at, SimTime::ZERO);
    }
}
