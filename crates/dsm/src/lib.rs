//! # acorr-dsm — the CVM-like software distributed shared memory
//!
//! This crate is the reproduction's stand-in for CVM, the page-based
//! software DSM the paper builds on. It executes deterministic
//! multi-threaded [`Program`]s over a simulated cluster, implementing:
//!
//! * **Multi-writer lazy release consistency** — twins on first write,
//!   word-range diffs finalized at releases and barriers, write notices,
//!   version-based invalidation, and periodic garbage collection that
//!   consolidates diffs and invalidates replicas ([`protocol`]).
//! * **Per-node multithreading** — threads on one node interleave and hide
//!   each other's remote-fetch latency; context switches and protection
//!   sweeps are costed ([`engine`]).
//! * **Thread migration** — reconfiguring a running application by copying
//!   thread stacks between nodes ([`Dsm::migrate_to`]).
//! * **Active correlation tracking** (§4.2 of the paper) — the headline
//!   mechanism: [`Dsm::run_tracked_iteration`] read-protects all pages, sets
//!   per-page correlation bits, pins each node's scheduler to one thread per
//!   barrier segment, and collects exact per-thread page-access bitmaps in
//!   one iteration.
//! * **Passive correlation tracking** (§4.1) — the prior-art baseline:
//!   [`Dsm::enable_passive_tracking`] observes only remote faults, so only
//!   the first local toucher of each page is ever seen.
//! * **A single-writer protocol mode** ([`WriteMode::SingleWriter`]) with a
//!   Mirage-style delta interval — §6's comparison point, complete with the
//!   page ping-ponging it is famous for.
//! * **Protocol tracing** ([`Dsm::enable_tracing`]) — a bounded ring of
//!   timestamped protocol events for debugging and observability.
//! * **Fault injection & conformance** — a deterministic [`FaultPlan`]
//!   (delay jitter, bounded reordering, transient drops with retry,
//!   per-node slowdown windows) perturbs every send, while the
//!   [`CoherenceOracle`] ([`Dsm::enable_oracle`]) shadows the protocol
//!   with a sequential reference memory and checks release-consistency
//!   expectations at every barrier and lock release ([`oracle`]).
//! * **Controllable scheduling** — a [`SchedulePolicy`]
//!   ([`Dsm::set_schedule_policy`]) steers the engine's legal-but-arbitrary
//!   choices (ready-queue dispatch, lock-grant order) for schedule-space
//!   exploration; happens-before race detection
//!   ([`Dsm::enable_race_detection`]) and the program-visible memory model
//!   ([`Dsm::enable_visible_image`]) ride the same hooks ([`steer`]).
//!
//! [`FaultPlan`]: acorr_sim::FaultPlan
//!
//! The crate deliberately knows nothing about *analyzing* the collected
//! access bitmaps — correlation matrices, maps, cut costs and placement live
//! in `acorr-track` and `acorr-place`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod error;
pub mod ids;
pub mod locks;
pub mod node;
pub mod oracle;
pub mod program;
pub mod protocol;
pub mod stats;
pub mod steer;
pub mod thread;
pub mod trace;

pub use config::{DsmConfig, InjectedBug, WriteMode};
pub use engine::{Dsm, MigrationReport};
pub use error::DsmError;
pub use ids::ThreadId;
pub use oracle::{CoherenceOracle, OracleReport};
pub use program::{validate_iteration, LockId, Op, Program, ScriptError};
pub use stats::IterStats;
pub use steer::{DecisionPoint, FifoPolicy, SchedulePolicy};
pub use trace::{Event, EventSink, Trace};
