//! Controllable scheduling: decision points and the policy that steers them.
//!
//! The engine's conservative event loop is deterministic, but a few of its
//! choices are *policy*, not causality: which ready thread a node dispatches
//! next, and which queued waiter receives a released lock. Any choice at
//! those points yields a legal execution — the engine's built-in behavior
//! is always FIFO (choice `0`).
//!
//! A [`SchedulePolicy`] attached via
//! [`Dsm::set_schedule_policy`](crate::Dsm::set_schedule_policy) is
//! consulted at exactly those points, and only when more than one choice is
//! legal, so a policy that always answers `0` reproduces the unsteered
//! engine bit-for-bit. Time-driven choices (which *node* steps next, when
//! blocked threads wake) stay causality-ordered and are never offered to
//! the policy; the pinned scheduler of tracked iterations has no choices at
//! all.

use acorr_sim::NodeId;

/// One steerable choice the engine is about to make.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionPoint {
    /// Which thread from `node`'s ready queue runs next. Alternative `k`
    /// is the queue's `k`-th entry; `0` is FIFO order.
    Run {
        /// The dispatching node.
        node: NodeId,
    },
    /// Which queued waiter is granted lock `lock` at a release.
    /// Alternative `k` is the wait queue's `k`-th entry; `0` is FIFO.
    Grant {
        /// The released lock's index.
        lock: usize,
    },
}

/// A scheduling policy: answers every decision point with a choice index.
///
/// Implementations must be `Send` (DSM instances run on the deterministic
/// worker pool) and are consulted synchronously from the event loop.
pub trait SchedulePolicy: std::fmt::Debug + Send {
    /// Chooses among `alternatives` (≥ 2) legal outcomes at `point`.
    /// Returns an index in `0..alternatives`; out-of-range answers are
    /// clamped by the engine.
    fn choose(&mut self, point: DecisionPoint, alternatives: usize) -> usize;

    /// Chooses the fault action for barrier interval `interval` from a menu
    /// of `alternatives` (action `0` is always "no fault"). Consulted once
    /// per interval whenever a policy is attached; the default answers `0`,
    /// so schedule-only policies never inject anything.
    fn inject(&mut self, interval: u64, alternatives: usize) -> usize {
        let _ = (interval, alternatives);
        0
    }
}

/// The trivial policy: always the engine's FIFO default. Attaching it is
/// equivalent to attaching no policy at all (useful for purity tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoPolicy;

impl SchedulePolicy for FifoPolicy {
    fn choose(&mut self, _point: DecisionPoint, _alternatives: usize) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_policy_always_answers_zero() {
        let mut p = FifoPolicy;
        assert_eq!(p.choose(DecisionPoint::Run { node: NodeId(0) }, 5), 0);
        assert_eq!(p.choose(DecisionPoint::Grant { lock: 3 }, 2), 0);
    }
}
