//! Engine configuration.

use acorr_sim::{ClusterConfig, CostModel, FaultPlan, NetworkModel, SimDuration};

/// Which write-sharing protocol the DSM runs.
///
/// The paper's CVM uses multi-writer lazy release consistency; its §6
/// discusses older *single-writer* protocols (Mirage, and the systems
/// behind PARSEC's suspension scheduling), where a page has one writable
/// copy at a time and ownership migrates on write faults. Such protocols
/// live or die by the **delta interval**: a newly arrived page is frozen at
/// its owner for a minimum time before it can be stolen away, or two
/// alternating writers ping-pong the page on every access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Multi-writer LRC with twins and diffs (CVM's protocol; the default).
    MultiWriter,
    /// Single-writer ownership protocol with a Mirage-style delta interval:
    /// after an ownership transfer, the page cannot be stolen again for
    /// `delta`.
    SingleWriter {
        /// Minimum residence time of a page at its owner.
        delta: SimDuration,
    },
}

/// A deliberately planted protocol bug, for exercising the fault
/// model-checker end to end.
///
/// The explorer's acceptance test needs a *real* seeded defect: a bug that
/// is invisible under fault-free schedules, is found by systematic
/// fault × schedule exploration, and shrinks to a minimal replay token.
/// Gating the defect behind configuration keeps it out of every production
/// path while letting tests inject it into an otherwise-stock engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedBug {
    /// While a network partition is active, invalidations (write notices)
    /// destined for nodes on the far side of the cut are silently dropped
    /// instead of queued for the heal — a classic partition-tolerance bug
    /// that leaves stale valid copies behind and trips the coherence oracle
    /// at the very next barrier.
    LosePartitionedInvalidations,
}

/// Configuration of one DSM instance.
///
/// Use [`DsmConfig::new`] for the defaults and the with-methods for
/// adjustments:
///
/// ```
/// use acorr_dsm::DsmConfig;
/// use acorr_sim::ClusterConfig;
/// let cluster = ClusterConfig::new(8, 64)?;
/// let config = DsmConfig::new(cluster).with_seed(7).with_gc_threshold(4096);
/// assert_eq!(config.seed, 7);
/// # Ok::<(), acorr_sim::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DsmConfig {
    /// Cluster shape: nodes and total threads.
    pub cluster: ClusterConfig,
    /// Network cost model.
    pub network: NetworkModel,
    /// CPU cost model.
    pub cost: CostModel,
    /// Garbage collection fires at a barrier once this many diff records are
    /// pending across all pages.
    pub gc_diff_threshold: usize,
    /// Seed for whatever randomized decisions the engine makes (none today;
    /// reserved and threaded through for reproducibility).
    pub seed: u64,
    /// Write-sharing protocol.
    pub write_mode: WriteMode,
    /// Deterministic network fault plan applied at every send; the default
    /// ([`FaultPlan::none`]) perturbs nothing and adds zero cost.
    pub faults: FaultPlan,
    /// Deliberately planted protocol defect for model-checker tests; `None`
    /// (the default) is the correct engine.
    pub inject: Option<InjectedBug>,
}

impl DsmConfig {
    /// A configuration with default cost models and GC threshold.
    pub fn new(cluster: ClusterConfig) -> Self {
        DsmConfig {
            cluster,
            network: NetworkModel::default(),
            cost: CostModel::default(),
            gc_diff_threshold: 16 * 1024,
            seed: 0,
            write_mode: WriteMode::MultiWriter,
            faults: FaultPlan::none(),
            inject: None,
        }
    }

    /// Replaces the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the network model.
    #[must_use]
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Replaces the CPU cost model.
    #[must_use]
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replaces the GC trigger threshold (pending diff records).
    #[must_use]
    pub fn with_gc_threshold(mut self, records: usize) -> Self {
        self.gc_diff_threshold = records;
        self
    }

    /// Replaces the write-sharing protocol.
    #[must_use]
    pub fn with_write_mode(mut self, mode: WriteMode) -> Self {
        self.write_mode = mode;
        self
    }

    /// Replaces the network fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Plants a deliberate protocol defect (test fixtures only).
    #[must_use]
    pub fn with_injected_bug(mut self, bug: InjectedBug) -> Self {
        self.inject = Some(bug);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let cluster = ClusterConfig::new(4, 16).unwrap();
        let c = DsmConfig::new(cluster)
            .with_seed(9)
            .with_gc_threshold(100)
            .with_network(NetworkModel::default())
            .with_cost(CostModel::default());
        assert_eq!(c.seed, 9);
        assert_eq!(c.gc_diff_threshold, 100);
        assert_eq!(c.cluster.num_threads(), 16);
        assert_eq!(c.write_mode, WriteMode::MultiWriter);
        let sw = c.with_write_mode(WriteMode::SingleWriter {
            delta: SimDuration::from_millis(1),
        });
        assert!(matches!(sw.write_mode, WriteMode::SingleWriter { .. }));
    }

    #[test]
    fn faults_default_to_none_and_chain() {
        let cluster = ClusterConfig::new(2, 4).unwrap();
        let c = DsmConfig::new(cluster);
        assert!(c.faults.is_none());
        let f = c.with_faults(FaultPlan::moderate(3));
        assert!(!f.faults.is_none());
        assert_eq!(f.faults.seed, 3);
    }
}
