//! Global coherence state: the page directory.
//!
//! The reproduction implements CVM's multi-writer lazy-release-consistency
//! family at the granularity the paper's measurements need. Each page has a
//! monotonically increasing *version*; every finalized write interval
//! contributes a [`DiffRecord`]. A node's copy is current when it has
//! applied every diff up to the page's version. Remote misses are resolved
//! either by applying the missing diffs (cheap, "Diff Mbytes") or — when the
//! faulting node's copy predates the owner's consolidated base — by fetching
//! the full page plus any still-pending diffs.
//!
//! Periodic *garbage collection* consolidates all of a page's pending diffs
//! at a single owner and invalidates other replicas, exactly the behaviour
//! §2 of the paper cites as a source of extra remote faults.

use acorr_mem::PageId;
use acorr_sim::{NodeId, SimTime};

/// One finalized write interval of one node on one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffRecord {
    /// The node that created the diff.
    pub node: NodeId,
    /// The page version this diff produced.
    pub version: u64,
    /// Diff payload size in bytes (dirty ranges plus framing).
    pub bytes: u64,
}

/// Global (directory) state of one page.
#[derive(Debug, Clone)]
pub struct PageGlobal {
    /// Latest version of the page anywhere in the system.
    pub version: u64,
    /// The node holding a full copy at `base_version`.
    pub owner: NodeId,
    /// Version of the owner's consolidated full copy.
    pub base_version: u64,
    /// Pending diffs, ascending by version, covering
    /// `(base_version, version]`.
    pub diffs: Vec<DiffRecord>,
    /// Single-writer protocol only: the page may not be stolen from its
    /// owner before this instant (the Mirage-style delta interval).
    pub sw_frozen_until: SimTime,
}

/// What a faulting node must fetch to make its copy current.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FetchPlan {
    /// Fetch a full page image from this node first (cold miss or
    /// post-GC miss).
    pub full_page_from: Option<NodeId>,
    /// Diffs to fetch and apply, ascending by version.
    pub diffs: Vec<DiffRecord>,
    /// The version the copy reflects after the fetch.
    pub new_version: u64,
}

impl FetchPlan {
    /// Total diff payload bytes in the plan.
    pub fn diff_bytes(&self) -> u64 {
        self.diffs.iter().map(|d| d.bytes).sum()
    }
}

/// The page directory: global versions, owners and pending diffs for every
/// shared page.
///
/// In CVM this state is distributed among page managers; the reproduction
/// centralizes the bookkeeping (the *traffic* it would cause is still
/// accounted by the engine) for determinism and simplicity.
#[derive(Debug, Clone)]
pub struct PageDirectory {
    pages: Vec<PageGlobal>,
    pending_records: usize,
}

impl PageDirectory {
    /// Creates a directory for `num_pages` pages, all owned (with a full,
    /// current copy) by `initial_owner`.
    pub fn new(num_pages: usize, initial_owner: NodeId) -> Self {
        PageDirectory {
            pages: (0..num_pages)
                .map(|_| PageGlobal {
                    version: 0,
                    owner: initial_owner,
                    base_version: 0,
                    diffs: Vec::new(),
                    sw_frozen_until: SimTime::ZERO,
                })
                .collect(),
            pending_records: 0,
        }
    }

    /// Number of pages tracked.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Read access to one page's global state.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn page(&self, page: PageId) -> &PageGlobal {
        &self.pages[page.idx()]
    }

    /// Current version of a page.
    pub fn version(&self, page: PageId) -> u64 {
        self.pages[page.idx()].version
    }

    /// Total pending diff records across all pages (the GC trigger).
    pub fn pending_records(&self) -> usize {
        self.pending_records
    }

    /// Records a finalized write interval: bumps the page version and files
    /// the diff. Returns the new version.
    pub fn record_diff(&mut self, page: PageId, node: NodeId, bytes: u64) -> u64 {
        let pg = &mut self.pages[page.idx()];
        pg.version += 1;
        pg.diffs.push(DiffRecord {
            node,
            version: pg.version,
            bytes,
        });
        self.pending_records += 1;
        pg.version
    }

    /// Computes what a node must fetch to bring its copy of `page` current.
    ///
    /// `applied_version` is the version the node's copy reflects and
    /// `has_copy` whether the node holds any (possibly stale) image. Diffs
    /// authored by `requester` itself are never refetched — the node already
    /// has its own modifications in place.
    pub fn fetch_plan(
        &self,
        page: PageId,
        requester: NodeId,
        applied_version: u64,
        has_copy: bool,
    ) -> FetchPlan {
        let mut plan = FetchPlan::default();
        self.fetch_plan_into(page, requester, applied_version, has_copy, &mut plan);
        plan
    }

    /// Like [`fetch_plan`](Self::fetch_plan), but reuses `out`'s diff buffer
    /// instead of allocating a fresh one — the engine keeps one scratch plan
    /// and every coherence fault fills it in place.
    pub fn fetch_plan_into(
        &self,
        page: PageId,
        requester: NodeId,
        applied_version: u64,
        has_copy: bool,
        out: &mut FetchPlan,
    ) {
        let pg = &self.pages[page.idx()];
        out.diffs.clear();
        out.new_version = pg.version;
        if has_copy && applied_version >= pg.base_version {
            // The copy can be patched forward with diffs alone.
            out.full_page_from = None;
            out.diffs.extend(
                pg.diffs
                    .iter()
                    .filter(|d| d.version > applied_version && d.node != requester),
            );
        } else {
            // Cold miss, or the copy predates the owner's consolidated base:
            // full page plus everything still pending.
            out.full_page_from = Some(pg.owner);
            out.diffs
                .extend(pg.diffs.iter().filter(|d| d.node != requester));
        }
    }

    /// Pages that currently have pending diffs (GC candidates), ascending.
    pub fn pages_with_diffs(&self) -> Vec<PageId> {
        self.pages
            .iter()
            .enumerate()
            .filter(|(_, pg)| !pg.diffs.is_empty())
            .map(|(i, _)| PageId(i as u32))
            .collect()
    }

    /// Single-writer protocol: moves ownership of `page` to `new_owner` and
    /// freezes it there until `frozen_until`.
    pub fn transfer_ownership(&mut self, page: PageId, new_owner: NodeId, frozen_until: SimTime) {
        let pg = &mut self.pages[page.idx()];
        pg.owner = new_owner;
        pg.version += 1;
        pg.sw_frozen_until = frozen_until;
    }

    /// Consolidates `page` at `new_owner`: the owner is assumed to have
    /// applied all pending diffs; they are drained and returned for traffic
    /// accounting, and the base version advances to the current version.
    pub fn consolidate(&mut self, page: PageId, new_owner: NodeId) -> Vec<DiffRecord> {
        let pg = &mut self.pages[page.idx()];
        pg.owner = new_owner;
        pg.base_version = pg.version;
        let drained = std::mem::take(&mut pg.diffs);
        self.pending_records -= drained.len();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);
    const N2: NodeId = NodeId(2);
    const P: PageId = PageId(0);

    #[test]
    fn initial_state_is_owned_and_clean() {
        let d = PageDirectory::new(4, N0);
        assert_eq!(d.num_pages(), 4);
        assert_eq!(d.version(P), 0);
        assert_eq!(d.pending_records(), 0);
        assert_eq!(d.page(P).owner, N0);
        assert!(d.pages_with_diffs().is_empty());
    }

    #[test]
    fn record_diff_bumps_version() {
        let mut d = PageDirectory::new(1, N0);
        assert_eq!(d.record_diff(P, N1, 100), 1);
        assert_eq!(d.record_diff(P, N2, 50), 2);
        assert_eq!(d.version(P), 2);
        assert_eq!(d.pending_records(), 2);
        assert_eq!(d.pages_with_diffs(), vec![P]);
    }

    #[test]
    fn current_copy_needs_nothing() {
        let mut d = PageDirectory::new(1, N0);
        d.record_diff(P, N1, 100);
        let plan = d.fetch_plan(P, N2, 1, true);
        assert_eq!(plan.full_page_from, None);
        assert!(plan.diffs.is_empty());
        assert_eq!(plan.new_version, 1);
    }

    #[test]
    fn stale_copy_fetches_missing_diffs_only() {
        let mut d = PageDirectory::new(1, N0);
        d.record_diff(P, N1, 100);
        d.record_diff(P, N2, 50);
        // Node 0 has version 0 → needs both diffs.
        let plan = d.fetch_plan(P, N0, 0, true);
        assert_eq!(plan.full_page_from, None);
        assert_eq!(plan.diffs.len(), 2);
        assert_eq!(plan.diff_bytes(), 150);
        assert_eq!(plan.new_version, 2);
    }

    #[test]
    fn own_diffs_are_never_refetched() {
        let mut d = PageDirectory::new(1, N0);
        d.record_diff(P, N1, 100);
        d.record_diff(P, N2, 50);
        let plan = d.fetch_plan(P, N1, 0, true);
        assert_eq!(plan.diffs.len(), 1);
        assert_eq!(plan.diffs[0].node, N2);
    }

    #[test]
    fn cold_miss_takes_full_page_plus_diffs() {
        let mut d = PageDirectory::new(1, N0);
        d.record_diff(P, N1, 100);
        let plan = d.fetch_plan(P, N2, 0, false);
        assert_eq!(plan.full_page_from, Some(N0));
        assert_eq!(plan.diffs.len(), 1);
    }

    #[test]
    fn consolidation_resets_and_forces_full_fetches() {
        let mut d = PageDirectory::new(1, N0);
        d.record_diff(P, N1, 100);
        d.record_diff(P, N2, 50);
        let drained = d.consolidate(P, N2);
        assert_eq!(drained.len(), 2);
        assert_eq!(d.pending_records(), 0);
        assert_eq!(d.page(P).owner, N2);
        assert_eq!(d.page(P).base_version, 2);
        // A copy at version 1 now predates the base → full fetch from N2.
        let plan = d.fetch_plan(P, N0, 1, true);
        assert_eq!(plan.full_page_from, Some(N2));
        assert!(plan.diffs.is_empty());
        // The owner itself stays current.
        let owner_plan = d.fetch_plan(P, N2, 2, true);
        assert_eq!(owner_plan.full_page_from, None);
        assert!(owner_plan.diffs.is_empty());
    }

    #[test]
    fn diffs_after_consolidation_patch_forward() {
        let mut d = PageDirectory::new(1, N0);
        d.record_diff(P, N1, 100);
        d.consolidate(P, N1);
        d.record_diff(P, N2, 40);
        let plan = d.fetch_plan(P, N0, 1, true);
        assert_eq!(plan.full_page_from, None);
        assert_eq!(plan.diffs.len(), 1);
        assert_eq!(plan.diffs[0].bytes, 40);
    }
}
