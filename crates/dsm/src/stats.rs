//! Execution statistics.
//!
//! Every quantity the paper's tables report is counted here: remote misses
//! (Table 2/6), tracking and coherence faults (Table 5), data and diff bytes
//! (Table 6), plus protocol internals (twins, diffs, GC, locks, migrations)
//! used by the extended analyses.

use acorr_sim::{NetStats, SimDuration};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Counters for one iteration (or an aggregate of several).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IterStats {
    /// Simulated time the iteration took (barrier-to-barrier).
    pub elapsed: SimDuration,
    /// Total time threads spent blocked on remote fetches and lock grants,
    /// summed over threads. Compared against `elapsed`, this shows how much
    /// latency per-node multithreading hid (§1's motivation for multiple
    /// threads per node): stall far above elapsed means overlap worked.
    pub stall: SimDuration,
    /// Remote misses: accesses to invalid pages resolved by remote fetch.
    pub remote_misses: u64,
    /// Correlation faults taken while active tracking was armed.
    pub tracking_faults: u64,
    /// Coherence faults (same events as remote misses, kept separately for
    /// Table 5's fault-column terminology).
    pub coherence_faults: u64,
    /// Write faults that created a twin (multi-writer) or re-upgraded an
    /// owned page (single-writer).
    pub twin_faults: u64,
    /// Single-writer protocol: page-ownership transfers between nodes.
    pub ownership_transfers: u64,
    /// Diffs created at releases/barriers.
    pub diffs_created: u64,
    /// Bytes of diff payload created.
    pub diff_bytes_created: u64,
    /// Barriers the application crossed.
    pub barriers: u64,
    /// Lock acquisitions.
    pub lock_acquires: u64,
    /// Lock acquisitions that had to transfer ownership between nodes.
    pub remote_lock_acquires: u64,
    /// Garbage-collection rounds run.
    pub gc_runs: u64,
    /// Pages consolidated by GC.
    pub gc_pages: u64,
    /// Threads migrated.
    pub migrations: u64,
    /// Fault-injected message retransmissions the protocol recovered from
    /// (0 without a fault plan; the corresponding traffic is in
    /// `net.retrans_*`, separate from the paper-reproduction counters).
    pub retries: u64,
    /// Duplicated message deliveries the protocol absorbed (idempotent
    /// receive); like `retries`, their traffic lands in the retransmission
    /// ledger, never in the paper counters.
    pub dup_messages: u64,
    /// Payload bytes carried by duplicated deliveries.
    pub dup_bytes: u64,
    /// Payload corruptions caught by the per-message checksum and repaired
    /// by retransmission.
    pub corrupt_detected: u64,
    /// Messages that stalled at a partition cut until it healed.
    pub partition_delays: u64,
    /// Node crashes injected at barrier boundaries.
    pub crashes: u64,
    /// Cached page copies wiped by crashes (reconstructed lazily from the
    /// surviving directory).
    pub pages_wiped: u64,
    /// Network traffic.
    pub net: NetStats,
}

impl IterStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        IterStats::default()
    }

    /// Total megabytes of data traffic (the paper's "Total Mbytes").
    pub fn total_mbytes(&self) -> f64 {
        self.net.data_bytes() as f64 / 1e6
    }

    /// Megabytes moved as diffs (the paper's "Diff Mbytes").
    pub fn diff_mbytes(&self) -> f64 {
        self.net.diff_bytes() as f64 / 1e6
    }
}

impl Add for IterStats {
    type Output = IterStats;
    fn add(self, rhs: IterStats) -> IterStats {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for IterStats {
    fn add_assign(&mut self, rhs: IterStats) {
        self.elapsed += rhs.elapsed;
        self.stall += rhs.stall;
        self.remote_misses += rhs.remote_misses;
        self.tracking_faults += rhs.tracking_faults;
        self.coherence_faults += rhs.coherence_faults;
        self.twin_faults += rhs.twin_faults;
        self.ownership_transfers += rhs.ownership_transfers;
        self.diffs_created += rhs.diffs_created;
        self.diff_bytes_created += rhs.diff_bytes_created;
        self.barriers += rhs.barriers;
        self.lock_acquires += rhs.lock_acquires;
        self.remote_lock_acquires += rhs.remote_lock_acquires;
        self.gc_runs += rhs.gc_runs;
        self.gc_pages += rhs.gc_pages;
        self.migrations += rhs.migrations;
        self.retries += rhs.retries;
        self.dup_messages += rhs.dup_messages;
        self.dup_bytes += rhs.dup_bytes;
        self.corrupt_detected += rhs.corrupt_detected;
        self.partition_delays += rhs.partition_delays;
        self.crashes += rhs.crashes;
        self.pages_wiped += rhs.pages_wiped;
        self.net += rhs.net;
    }
}

/// Counter difference, used by the observability layer to turn cumulative
/// snapshots into per-barrier-interval deltas. Every field is monotonically
/// non-decreasing over a run, so `later - earlier` of two snapshots of the
/// *same* run never underflows; subtraction saturates anyway so a misuse
/// yields zeros rather than a panic.
impl Sub for IterStats {
    type Output = IterStats;
    fn sub(self, rhs: IterStats) -> IterStats {
        IterStats {
            elapsed: self.elapsed.saturating_sub(rhs.elapsed),
            stall: self.stall.saturating_sub(rhs.stall),
            remote_misses: self.remote_misses.saturating_sub(rhs.remote_misses),
            tracking_faults: self.tracking_faults.saturating_sub(rhs.tracking_faults),
            coherence_faults: self.coherence_faults.saturating_sub(rhs.coherence_faults),
            twin_faults: self.twin_faults.saturating_sub(rhs.twin_faults),
            ownership_transfers: self
                .ownership_transfers
                .saturating_sub(rhs.ownership_transfers),
            diffs_created: self.diffs_created.saturating_sub(rhs.diffs_created),
            diff_bytes_created: self
                .diff_bytes_created
                .saturating_sub(rhs.diff_bytes_created),
            barriers: self.barriers.saturating_sub(rhs.barriers),
            lock_acquires: self.lock_acquires.saturating_sub(rhs.lock_acquires),
            remote_lock_acquires: self
                .remote_lock_acquires
                .saturating_sub(rhs.remote_lock_acquires),
            gc_runs: self.gc_runs.saturating_sub(rhs.gc_runs),
            gc_pages: self.gc_pages.saturating_sub(rhs.gc_pages),
            migrations: self.migrations.saturating_sub(rhs.migrations),
            retries: self.retries.saturating_sub(rhs.retries),
            dup_messages: self.dup_messages.saturating_sub(rhs.dup_messages),
            dup_bytes: self.dup_bytes.saturating_sub(rhs.dup_bytes),
            corrupt_detected: self.corrupt_detected.saturating_sub(rhs.corrupt_detected),
            partition_delays: self.partition_delays.saturating_sub(rhs.partition_delays),
            crashes: self.crashes.saturating_sub(rhs.crashes),
            pages_wiped: self.pages_wiped.saturating_sub(rhs.pages_wiped),
            net: self.net - rhs.net,
        }
    }
}

impl fmt::Display for IterStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | misses {} | tracking {} | coherence {} | twins {} | diffs {} ({} B) | barriers {} | locks {} ({} remote) | gc {} | retries {} | {:.2} MB total / {:.2} MB diff",
            self.elapsed,
            self.remote_misses,
            self.tracking_faults,
            self.coherence_faults,
            self.twin_faults,
            self.diffs_created,
            self.diff_bytes_created,
            self.barriers,
            self.lock_acquires,
            self.remote_lock_acquires,
            self.gc_runs,
            self.retries,
            self.total_mbytes(),
            self.diff_mbytes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_sim::MessageKind;

    #[test]
    fn aggregation_adds_fields() {
        let mut a = IterStats::new();
        a.remote_misses = 3;
        a.elapsed = SimDuration::from_micros(10);
        a.net.record(MessageKind::PageFetch, 4096);
        let mut b = IterStats::new();
        b.remote_misses = 4;
        b.elapsed = SimDuration::from_micros(5);
        b.net.record(MessageKind::DiffFetch, 100);
        let c = a + b;
        assert_eq!(c.remote_misses, 7);
        assert_eq!(c.elapsed, SimDuration::from_micros(15));
        assert_eq!(c.net.total_bytes(), 4196);
    }

    #[test]
    fn mbyte_views() {
        let mut s = IterStats::new();
        s.net.record(MessageKind::PageFetch, 2_000_000);
        s.net.record(MessageKind::DiffFetch, 1_000_000);
        assert!((s.total_mbytes() - 3.0).abs() < 1e-9);
        assert!((s.diff_mbytes() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn subtraction_yields_interval_deltas() {
        let mut earlier = IterStats::new();
        earlier.remote_misses = 3;
        earlier.elapsed = SimDuration::from_micros(10);
        earlier.net.record(MessageKind::PageFetch, 4096);
        let mut later = earlier;
        later.remote_misses = 8;
        later.elapsed = SimDuration::from_micros(25);
        later.net.record(MessageKind::PageFetch, 4096);
        let delta = later - earlier;
        assert_eq!(delta.remote_misses, 5);
        assert_eq!(delta.elapsed, SimDuration::from_micros(15));
        assert_eq!(delta.net.total_bytes(), 4096);
        // Misuse (earlier - later) saturates to zero instead of panicking.
        let zero = earlier - later;
        assert_eq!(zero.remote_misses, 0);
        assert_eq!(zero.net.total_bytes(), 0);
    }

    #[test]
    fn display_is_comprehensive() {
        let s = IterStats::new();
        let txt = s.to_string();
        assert!(txt.contains("misses"));
        assert!(txt.contains("MB diff"));
    }
}
