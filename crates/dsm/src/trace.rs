//! Protocol event tracing.
//!
//! A bounded, timestamped log of protocol-level events (faults, fetches,
//! twins, diffs, ownership transfers, invalidations, barriers, locks,
//! migrations). Disabled by default and allocation-bounded when enabled, so
//! it can stay on in long experiments; the cap drops the *oldest* events,
//! keeping the most recent window — what you want when a run misbehaves at
//! the end.
//!
//! ```
//! use acorr_dsm::trace::{Event, Trace};
//! use acorr_sim::SimTime;
//!
//! let mut trace = Trace::new(2);
//! trace.record(SimTime::ZERO, Event::BarrierRelease { index: 0 });
//! trace.record(SimTime::ZERO, Event::BarrierRelease { index: 1 });
//! trace.record(SimTime::ZERO, Event::BarrierRelease { index: 2 });
//! assert_eq!(trace.len(), 2);
//! assert_eq!(trace.dropped(), 1);
//! ```

use crate::stats::IterStats;
use acorr_mem::PageId;
use acorr_sim::{NodeId, SimDuration, SimTime};
use std::collections::VecDeque;
use std::fmt;

/// A destination for protocol events and derived measurements.
///
/// The engine forwards every [`Event`] (with its simulated timestamp) to the
/// attached sink, plus three derived streams that external observability
/// layers want but the bounded [`Trace`] ring does not retain: remote-fetch
/// latencies, lock-grant latencies, and per-barrier-interval statistic
/// deltas. All callbacks are **observation-only**: the engine's simulated
/// time, statistics and scheduling are bit-identical with or without a sink
/// attached (the purity tests in `tests/observability.rs` enforce this).
///
/// Implementations must be `Send` because DSM instances run on the
/// deterministic worker pool; each instance owns its own sink, so no
/// synchronization beyond `Send` is required.
pub trait EventSink: fmt::Debug + Send {
    /// Receives one protocol event at simulated time `at`.
    fn record_event(&mut self, at: SimTime, event: &Event);

    /// Receives the total delivery latency of one remote fetch (the page
    /// and diff traffic resolving a coherence miss), charged at `at` on
    /// `node`. Fault-injected retransmission timeouts are included, so
    /// under a fault plan the distribution's tail is the injector's work.
    fn record_fetch_latency(&mut self, at: SimTime, node: NodeId, latency: SimDuration) {
        let _ = (at, node, latency);
    }

    /// Receives the grant latency of one lock acquisition at `at` on
    /// `node`: the local grant cost for node-local handoffs, or the
    /// two-message control exchange (plus any fault-injected delay) for
    /// cross-node transfers.
    fn record_lock_latency(&mut self, at: SimTime, node: NodeId, latency: SimDuration) {
        let _ = (at, node, latency);
    }

    /// Receives the delta of the iteration counters accumulated since the
    /// previous barrier (or iteration start), at the release time of
    /// barrier `barrier` (a run-global ordinal). `delta.elapsed` is the
    /// simulated span of the interval itself.
    fn record_interval(&mut self, at: SimTime, barrier: u64, delta: &IterStats) {
        let _ = (at, barrier, delta);
    }
}

/// An engine phase profiled by the span instrumentation.
///
/// Spans are emitted only while span profiling is enabled on the engine
/// (see `Dsm::enable_span_profiling`) *and* a sink is attached; they never
/// enter the bounded [`Trace`] ring, so trace-based tooling is unaffected.
/// `Fetch` nests `Apply` (the diff application inside a remote fetch) —
/// the Chrome sink renders the pair as nestable duration events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// First-write twin creation (or single-writer re-upgrade).
    TwinCreate,
    /// Diff construction at a release or barrier.
    DiffBuild,
    /// Remote fetch resolving a coherence miss (network transfer + apply).
    Fetch,
    /// Diff application inside a fetch (nested under [`SpanPhase::Fetch`]).
    Apply,
    /// Lock grant: local handoff or cross-node control exchange.
    LockGrant,
    /// Barrier close: finalization, rendezvous and release.
    BarrierClose,
}

impl SpanPhase {
    /// Stable lowercase name used in artifacts (JSONL `phase` member and
    /// Chrome span names).
    pub fn name(self) -> &'static str {
        match self {
            SpanPhase::TwinCreate => "twin_create",
            SpanPhase::DiffBuild => "diff_build",
            SpanPhase::Fetch => "fetch",
            SpanPhase::Apply => "apply",
            SpanPhase::LockGrant => "lock_grant",
            SpanPhase::BarrierClose => "barrier_close",
        }
    }
}

impl fmt::Display for SpanPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One protocol event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Active tracking recorded a first touch.
    CorrelationFault {
        /// Faulting thread (global index).
        thread: usize,
        /// Page touched.
        page: PageId,
    },
    /// A coherence fault resolved by remote fetch.
    RemoteMiss {
        /// Faulting node.
        node: NodeId,
        /// Faulting thread (global index).
        thread: usize,
        /// Page fetched.
        page: PageId,
    },
    /// First write of an interval created a twin (or re-upgraded an owned
    /// page under the single-writer protocol).
    WriteFault {
        /// Writing node.
        node: NodeId,
        /// Page twinned/upgraded.
        page: PageId,
    },
    /// Single-writer protocol moved a page's ownership.
    OwnershipTransfer {
        /// Page transferred.
        page: PageId,
        /// New owner.
        to: NodeId,
    },
    /// A diff was finalized at a release or barrier.
    DiffCreated {
        /// Writing node.
        node: NodeId,
        /// Page diffed.
        page: PageId,
        /// Diff payload bytes.
        bytes: u64,
    },
    /// Garbage collection consolidated a page.
    GcConsolidated {
        /// Page consolidated.
        page: PageId,
        /// The consolidating owner.
        owner: NodeId,
    },
    /// A global barrier released.
    BarrierRelease {
        /// Barrier ordinal within the run.
        index: u64,
    },
    /// A lock was granted.
    LockGranted {
        /// Lock index.
        lock: usize,
        /// Receiving thread (global index).
        thread: usize,
        /// Whether the grant crossed nodes.
        remote: bool,
    },
    /// A thread migrated.
    Migration {
        /// Thread (global index).
        thread: usize,
        /// Destination node.
        to: NodeId,
    },
    /// A schedule policy was consulted at a decision point (only emitted
    /// while a policy is attached and more than one choice was legal).
    ScheduleDecision {
        /// Run-global decision ordinal.
        seq: u64,
        /// Number of legal alternatives at this point.
        alternatives: u32,
        /// Index the policy chose (`0` is the engine's FIFO default).
        choice: u32,
    },
    /// A fault action fired at a barrier-interval boundary (never emitted
    /// for action `0`, "no fault", so fault-free runs have clean streams).
    FaultDecision {
        /// Run-global barrier-interval ordinal (spans iterations).
        interval: u64,
        /// Size of the fault-action menu at this interval.
        alternatives: u32,
        /// Index of the action taken.
        choice: u32,
    },
    /// A node crashed at a barrier and rejoined with a cold cache; its
    /// protocol state reconstructs from the surviving directory.
    NodeCrash {
        /// The crashed node.
        node: NodeId,
        /// Cached page copies wiped by the crash.
        pages: u64,
    },
    /// A profiled engine phase opened (span profiling only; closed by the
    /// [`Event::SpanEnd`] carrying the same `id`).
    SpanBegin {
        /// Run-global span ordinal pairing begin with end.
        id: u64,
        /// The profiled phase.
        phase: SpanPhase,
        /// Node the phase ran on.
        node: NodeId,
    },
    /// A profiled engine phase closed (see [`Event::SpanBegin`]).
    SpanEnd {
        /// Run-global span ordinal pairing end with begin.
        id: u64,
        /// The profiled phase.
        phase: SpanPhase,
        /// Node the phase ran on.
        node: NodeId,
    },
    /// Windowed correlation tracking detected a sharing-structure shift:
    /// the delta norm between consecutive tracked windows crossed the
    /// detector's threshold (emitted by the observability layer's phase
    /// detector, never by the engine itself).
    PhaseShift {
        /// Ordinal of the tracked window that closed shifted (iterations
        /// or barrier intervals, depending on the detector's driver).
        window: u64,
        /// Correlation delta norm in parts per million (`delta * 1e6`,
        /// kept integral so the event stays `Eq`).
        delta_ppm: u64,
    },
    /// The online placement service accepted a re-mapping: predicted
    /// cut-cost improvement strictly exceeded the migration cost model's
    /// charge (emitted by the serve loop, never by the engine itself).
    RemapAccepted {
        /// Traffic/iteration step at which the decision was taken.
        step: u64,
        /// Threads the accepted plan moves.
        moves: u64,
        /// Cut cost of the pre-migration mapping on the firing window.
        cut_before: u64,
        /// Predicted cut cost of the planned mapping.
        cut_after: u64,
        /// Migration cost charged by the model.
        cost: u64,
    },
    /// The online placement service rejected a candidate re-mapping:
    /// the predicted improvement did not beat the migration cost.
    RemapRejected {
        /// Traffic/iteration step at which the decision was taken.
        step: u64,
        /// Threads the rejected plan would have moved.
        moves: u64,
        /// Cut cost of the current mapping on the firing window.
        cut_before: u64,
        /// Predicted cut cost of the rejected candidate.
        cut_after: u64,
        /// Migration cost charged by the model.
        cost: u64,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Event::CorrelationFault { thread, page } => {
                write!(f, "corr-fault t{thread} {page}")
            }
            Event::RemoteMiss { node, thread, page } => {
                write!(f, "miss {node} t{thread} {page}")
            }
            Event::WriteFault { node, page } => write!(f, "write-fault {node} {page}"),
            Event::OwnershipTransfer { page, to } => write!(f, "own {page} -> {to}"),
            Event::DiffCreated { node, page, bytes } => {
                write!(f, "diff {node} {page} {bytes}B")
            }
            Event::GcConsolidated { page, owner } => write!(f, "gc {page} @ {owner}"),
            Event::BarrierRelease { index } => write!(f, "barrier #{index}"),
            Event::LockGranted {
                lock,
                thread,
                remote,
            } => write!(
                f,
                "lock l{lock} -> t{thread}{}",
                if remote { " (remote)" } else { "" }
            ),
            Event::Migration { thread, to } => write!(f, "migrate t{thread} -> {to}"),
            Event::ScheduleDecision {
                seq,
                alternatives,
                choice,
            } => write!(f, "decide #{seq} {choice}/{alternatives}"),
            Event::FaultDecision {
                interval,
                alternatives,
                choice,
            } => write!(f, "inject #{interval} {choice}/{alternatives}"),
            Event::NodeCrash { node, pages } => {
                write!(f, "crash {node} ({pages} pages wiped)")
            }
            Event::SpanBegin { id, phase, node } => write!(f, "span+ {phase} {node} #{id}"),
            Event::SpanEnd { id, phase, node } => write!(f, "span- {phase} {node} #{id}"),
            Event::PhaseShift { window, delta_ppm } => {
                write!(f, "phase-shift w{window} delta {delta_ppm}ppm")
            }
            Event::RemapAccepted {
                step,
                moves,
                cut_before,
                cut_after,
                cost,
            } => write!(
                f,
                "remap+ s{step} {moves}mv cut {cut_before}->{cut_after} cost {cost}"
            ),
            Event::RemapRejected {
                step,
                moves,
                cut_before,
                cut_after,
                cost,
            } => write!(
                f,
                "remap- s{step} {moves}mv cut {cut_before}->{cut_after} cost {cost}"
            ),
        }
    }
}

/// A bounded ring of timestamped protocol events.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: VecDeque<(SimTime, Event)>,
    capacity: usize,
    dropped: u64,
}

/// The ring buffer doubles as the simplest [`EventSink`]: timestamps and
/// events are retained (newest `capacity`), the derived latency/interval
/// streams are ignored.
impl EventSink for Trace {
    fn record_event(&mut self, at: SimTime, event: &Event) {
        self.record(at, *event);
    }
}

impl Trace {
    /// Creates a trace retaining at most `capacity` events (the newest).
    ///
    /// A `capacity` of **zero** is valid and deliberate: such a trace
    /// stores nothing, but every [`Trace::record`] still increments
    /// [`Trace::dropped`] — a zero-allocation event *counter* for runs
    /// where only the volume matters.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full. With a capacity of
    /// zero nothing is ever stored; the event is counted as dropped
    /// (see [`Trace::new`]).
    pub fn record(&mut self, at: SimTime, event: Event) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((at, event));
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (or refused) due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained `(time, event)` pairs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, Event)> {
        self.events.iter()
    }

    /// Renders the trace as one line per event.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (at, ev) in &self.events {
            let _ = writeln!(out, "{at:>16}  {ev}");
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "({} earlier events dropped)", self.dropped);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_ring_keeps_newest() {
        let mut t = Trace::new(3);
        for i in 0..5 {
            t.record(SimTime::from_nanos(i), Event::BarrierRelease { index: i });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let indices: Vec<u64> = t
            .iter()
            .map(|(_, e)| match e {
                Event::BarrierRelease { index } => *index,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(indices, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_counts_but_stores_nothing() {
        let mut t = Trace::new(0);
        t.record(SimTime::ZERO, Event::BarrierRelease { index: 0 });
        t.record(SimTime::ZERO, Event::BarrierRelease { index: 1 });
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.iter().count(), 0);
        assert!(t.render().contains("2 earlier events dropped"));
    }

    #[test]
    fn trace_is_an_event_sink() {
        fn sink_all(sink: &mut dyn EventSink) {
            for i in 0..3 {
                sink.record_event(SimTime::from_nanos(i), &Event::BarrierRelease { index: i });
            }
            // Derived streams have no-op defaults.
            sink.record_fetch_latency(SimTime::ZERO, NodeId(0), SimDuration::from_micros(1));
            sink.record_lock_latency(SimTime::ZERO, NodeId(0), SimDuration::from_micros(1));
            sink.record_interval(SimTime::ZERO, 0, &IterStats::new());
        }
        let mut t = Trace::new(2);
        sink_all(&mut t);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        // iter() drains without cloning the deque.
        let times: Vec<u64> = t.iter().map(|(at, _)| at.as_nanos()).collect();
        assert_eq!(times, vec![1, 2]);
    }

    #[test]
    fn render_is_one_line_per_event_plus_drop_note() {
        let mut t = Trace::new(2);
        for i in 0..3 {
            t.record(
                SimTime::from_nanos(1000 * i),
                Event::RemoteMiss {
                    node: NodeId(1),
                    thread: 4,
                    page: PageId(7),
                },
            );
        }
        let txt = t.render();
        assert_eq!(txt.lines().count(), 3);
        assert!(txt.contains("miss n1 t4 p7"));
        assert!(txt.contains("1 earlier events dropped"));
    }

    #[test]
    fn event_display_covers_all_variants() {
        let samples = [
            Event::CorrelationFault {
                thread: 1,
                page: PageId(2),
            },
            Event::RemoteMiss {
                node: NodeId(0),
                thread: 1,
                page: PageId(2),
            },
            Event::WriteFault {
                node: NodeId(0),
                page: PageId(2),
            },
            Event::OwnershipTransfer {
                page: PageId(2),
                to: NodeId(1),
            },
            Event::DiffCreated {
                node: NodeId(0),
                page: PageId(2),
                bytes: 64,
            },
            Event::GcConsolidated {
                page: PageId(2),
                owner: NodeId(1),
            },
            Event::BarrierRelease { index: 3 },
            Event::LockGranted {
                lock: 0,
                thread: 2,
                remote: true,
            },
            Event::Migration {
                thread: 2,
                to: NodeId(1),
            },
            Event::ScheduleDecision {
                seq: 0,
                alternatives: 2,
                choice: 1,
            },
            Event::FaultDecision {
                interval: 4,
                alternatives: 5,
                choice: 1,
            },
            Event::NodeCrash {
                node: NodeId(1),
                pages: 3,
            },
            Event::SpanBegin {
                id: 0,
                phase: SpanPhase::Fetch,
                node: NodeId(0),
            },
            Event::SpanEnd {
                id: 0,
                phase: SpanPhase::Fetch,
                node: NodeId(0),
            },
            Event::PhaseShift {
                window: 2,
                delta_ppm: 412_000,
            },
            Event::RemapAccepted {
                step: 12,
                moves: 8,
                cut_before: 400,
                cut_after: 120,
                cost: 32,
            },
            Event::RemapRejected {
                step: 24,
                moves: 2,
                cut_before: 96,
                cut_after: 90,
                cost: 8,
            },
        ];
        for ev in samples {
            assert!(!ev.to_string().is_empty());
        }
    }

    #[test]
    fn span_phase_names_are_stable_artifact_identifiers() {
        // These strings appear in events.jsonl and trace.json; renaming one
        // is an artifact-schema change, so pin them.
        let expected = [
            (SpanPhase::TwinCreate, "twin_create"),
            (SpanPhase::DiffBuild, "diff_build"),
            (SpanPhase::Fetch, "fetch"),
            (SpanPhase::Apply, "apply"),
            (SpanPhase::LockGrant, "lock_grant"),
            (SpanPhase::BarrierClose, "barrier_close"),
        ];
        for (phase, name) in expected {
            assert_eq!(phase.name(), name);
            assert_eq!(phase.to_string(), name);
        }
    }
}
