//! Conformance oracle: a sequential reference memory shadowing the protocol.
//!
//! The engine prices coherence traffic but holds no page contents, so a
//! protocol bug (a lost invalidation, a misapplied diff, a version that
//! drifts from reality) would be invisible to the statistics. The
//! [`CoherenceOracle`] closes that gap: it maintains an independent
//! byte-level model of the shared memory — a *committed* image per page
//! (what a sequentially consistent observer would see after every finalized
//! write interval) plus a per-node *view* (what that node's physical copy
//! must contain under multi-writer lazy release consistency) — and checks,
//! at every page fetch, diff finalization, lock release and barrier, that
//! the engine's validity, version and diff bookkeeping agree with the
//! model.
//!
//! Writes deposit unique tokens, so any merge or invalidation mistake shows
//! up as a byte mismatch. Concurrent unsynchronized writes to the *same*
//! byte are a data race — release consistency leaves their outcome
//! unspecified — so the oracle marks such bytes *hazy* and excludes them
//! from content comparisons until a properly ordered write makes them
//! definite again. Race-free programs (all paper applications) are checked
//! byte-for-byte.
//!
//! The oracle is pure bookkeeping on the side: enabling it never changes
//! simulated time, traffic or scheduling, so an oracle-enabled run produces
//! bit-identical statistics to a plain one.

use crate::node::NodeState;
use crate::protocol::PageDirectory;
use acorr_mem::{write_token, PageId, PageSpan, VisibleImage, PAGE_SIZE};

/// How many violations the oracle records in detail before only counting.
const MAX_RECORDED: usize = 8;

/// Summary of the checking work an oracle performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OracleReport {
    /// Barrier-time full-memory checks performed.
    pub barriers_checked: u64,
    /// Lock releases checked.
    pub lock_releases_checked: u64,
    /// Page fetches cross-checked against the reference memory.
    pub fetches_checked: u64,
    /// Diff finalizations independently re-merged and verified.
    pub finalizes_checked: u64,
    /// Bytes compared between node views and the committed image.
    pub bytes_compared: u64,
    /// Bytes currently excluded from comparison as data-raced.
    pub hazy_bytes: u64,
    /// Violations detected (0 on a conforming run).
    pub violations: u64,
}

/// The committed (sequential-reference) state of one page.
struct PageShadow {
    /// Reference contents after every finalized write interval so far.
    committed: Box<[u8; PAGE_SIZE]>,
    /// Number of finalized write intervals (must track the directory
    /// version in multi-writer mode).
    version: u64,
    /// Per-byte version of the interval that last committed it (saturated
    /// to `u32::MAX`); used to distinguish ordered rewrites from races.
    last_commit: Box<[u32; PAGE_SIZE]>,
    /// Bitset of bytes whose committed value is unspecified because two
    /// unordered write intervals both stored to them.
    hazy: Box<[u64; PAGE_SIZE / 64]>,
}

impl PageShadow {
    fn new() -> Self {
        PageShadow {
            committed: Box::new([0; PAGE_SIZE]),
            version: 0,
            last_commit: Box::new([0; PAGE_SIZE]),
            hazy: Box::new([0; PAGE_SIZE / 64]),
        }
    }

    fn set_hazy(&mut self, b: usize, v: bool) {
        if v {
            self.hazy[b / 64] |= 1 << (b % 64);
        } else {
            self.hazy[b / 64] &= !(1 << (b % 64));
        }
    }

    fn hazy_count(&self) -> u64 {
        self.hazy.iter().map(|w| w.count_ones() as u64).sum()
    }
}

/// One node's modelled physical copy of one page.
struct NodeView {
    /// Expected contents of the node's copy.
    data: Box<[u8; PAGE_SIZE]>,
    /// Version the copy reflects (mirrors the engine's `applied_version`).
    base_version: u64,
    /// Un-finalized write spans of the current interval, in insertion
    /// order (the oracle's independent "twin": merged only at finalize).
    pending: Vec<(u16, u16)>,
}

impl NodeView {
    fn new() -> Self {
        NodeView {
            data: Box::new([0; PAGE_SIZE]),
            base_version: 0,
            pending: Vec::new(),
        }
    }
}

/// Sequential reference memory + release-consistency checker.
///
/// See the [module docs](self) for the model. Created through
/// [`Dsm::enable_oracle`](crate::Dsm::enable_oracle); violations surface as
/// [`DsmError::OracleViolation`](crate::DsmError::OracleViolation) from the
/// run methods.
pub struct CoherenceOracle {
    num_pages: usize,
    single_writer: bool,
    iteration: u64,
    /// Per-thread count of nonempty writes: the token ordinal, shared with
    /// [`VisibleImage`] so differential checks can compare byte-for-byte.
    write_seq: Vec<u64>,
    shadows: Vec<Option<Box<PageShadow>>>,
    /// Indexed `node * num_pages + page`.
    views: Vec<Option<Box<NodeView>>>,
    violations: Vec<String>,
    violation_count: u64,
    report: OracleReport,
}

impl std::fmt::Debug for CoherenceOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoherenceOracle")
            .field("num_pages", &self.num_pages)
            .field("single_writer", &self.single_writer)
            .field("report", &self.report())
            .finish_non_exhaustive()
    }
}

impl CoherenceOracle {
    /// Creates an oracle for `num_nodes` nodes and `num_pages` pages.
    pub fn new(num_nodes: usize, num_pages: usize, single_writer: bool) -> Self {
        CoherenceOracle {
            num_pages,
            single_writer,
            iteration: 0,
            write_seq: Vec::new(),
            shadows: (0..num_pages).map(|_| None).collect(),
            views: (0..num_nodes * num_pages).map(|_| None).collect(),
            violations: Vec::new(),
            violation_count: 0,
            report: OracleReport::default(),
        }
    }

    /// The checking summary so far.
    pub fn report(&self) -> OracleReport {
        let mut r = self.report;
        r.violations = self.violation_count;
        r.hazy_bytes = self.shadows.iter().flatten().map(|s| s.hazy_count()).sum();
        r
    }

    /// The first recorded violation, if any.
    pub fn first_violation(&self) -> Option<&str> {
        self.violations.first().map(String::as_str)
    }

    /// Pages that currently contain hazy (data-raced) bytes. Used by the
    /// exploration layer to cross-check the happens-before race detector:
    /// every hazy page must also carry a detected write-write race.
    pub fn hazy_pages(&self) -> Vec<PageId> {
        self.shadows
            .iter()
            .enumerate()
            .filter_map(|(p, s)| match s {
                Some(s) if s.hazy_count() > 0 => Some(PageId(p as u32)),
                _ => None,
            })
            .collect()
    }

    fn violate(&mut self, detail: String) {
        self.violation_count += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(detail);
        }
    }

    fn shadow(&mut self, page: PageId) -> &mut PageShadow {
        self.shadows[page.idx()].get_or_insert_with(|| Box::new(PageShadow::new()))
    }

    fn view_mut(
        views: &mut [Option<Box<NodeView>>],
        num_pages: usize,
        node: usize,
        page: PageId,
    ) -> &mut NodeView {
        views[node * num_pages + page.idx()].get_or_insert_with(|| Box::new(NodeView::new()))
    }

    /// A fresh, non-zero write token, so merge mistakes cannot alias back
    /// to a correct-looking byte by accident. A pure function of the
    /// writing thread and its per-thread write ordinal — *not* of global
    /// write order — so the token stream is identical across schedules and
    /// protocols, and [`CoherenceOracle::check_visible`] can compare the
    /// committed image against the [`VisibleImage`] model byte-for-byte.
    fn token(&mut self, thread: usize) -> u8 {
        if thread >= self.write_seq.len() {
            self.write_seq.resize(thread + 1, 0);
        }
        let seq = self.write_seq[thread];
        self.write_seq[thread] += 1;
        write_token(thread, seq)
    }

    /// Called at the start of every iteration.
    pub fn begin_iteration(&mut self, iteration: usize) {
        self.iteration = iteration as u64;
    }

    // --------------------------------------------------------------
    // Event hooks (multi-writer)
    // --------------------------------------------------------------

    /// A thread stored to `span` on `node` (multi-writer: buffered in the
    /// local copy until finalization; single-writer: immediately global).
    pub fn on_write(&mut self, node: usize, thread: usize, span: PageSpan) {
        if span.start == span.end {
            return; // zero-length stores leave no trace (mirrors RangeSet)
        }
        let token = self.token(thread);
        let num_pages = self.num_pages;
        let view = Self::view_mut(&mut self.views, num_pages, node, span.page);
        view.data[span.start as usize..span.end as usize].fill(token);
        if self.single_writer {
            // Eager protocol: the owner's store is the global truth at once.
            let shadow = self.shadow(span.page);
            shadow.committed[span.start as usize..span.end as usize].fill(token);
        } else {
            view.pending.push((span.start, span.end));
        }
    }

    /// A node brought its copy current (multi-writer fetch): the engine
    /// claims the copy now reflects `new_version`. The modelled result is
    /// the committed image with the node's own un-finalized writes
    /// re-applied on top (the twin-preservation merge).
    pub fn on_fetch(&mut self, node: usize, page: PageId, new_version: u64) {
        self.report.fetches_checked += 1;
        let shadow_version = self.shadows[page.idx()].as_ref().map_or(0, |s| s.version);
        if new_version != shadow_version {
            self.violate(format!(
                "fetch of page {} at node {node}: directory version {new_version} \
                 but {shadow_version} write intervals were finalized",
                page.idx()
            ));
        }
        let committed: Box<[u8; PAGE_SIZE]> = match &self.shadows[page.idx()] {
            Some(s) => s.committed.clone(),
            None => Box::new([0; PAGE_SIZE]),
        };
        let num_pages = self.num_pages;
        let view = Self::view_mut(&mut self.views, num_pages, node, page);
        let mut data = committed;
        for &(s, e) in &view.pending {
            data[s as usize..e as usize].copy_from_slice(&view.data[s as usize..e as usize]);
        }
        view.data = data;
        view.base_version = new_version;
    }

    /// A node finalized its write interval on `page` (diff creation). The
    /// oracle independently merges the pending spans and cross-checks the
    /// engine's dirty-range bookkeeping, then commits the bytes.
    pub fn on_finalize(
        &mut self,
        node: usize,
        page: PageId,
        dirty_len: u64,
        fragments: usize,
        new_version: u64,
        still_valid: bool,
    ) {
        self.report.finalizes_checked += 1;
        let num_pages = self.num_pages;
        let view = Self::view_mut(&mut self.views, num_pages, node, page);
        let base_version = view.base_version;
        // Independent merge of the raw write spans (sorted; overlapping or
        // adjacent spans coalesce, mirroring a word-level diff).
        let mut spans = std::mem::take(&mut view.pending);
        spans.sort_unstable();
        let mut merged: Vec<(u16, u16)> = Vec::new();
        for (s, e) in spans {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        let merged_len: u64 = merged.iter().map(|&(s, e)| (e - s) as u64).sum();
        if merged_len != dirty_len || merged.len() != fragments {
            self.violate(format!(
                "finalize of page {} at node {node}: engine diff covers {dirty_len} B in \
                 {fragments} fragments, independent merge got {merged_len} B in {}",
                page.idx(),
                merged.len()
            ));
        }
        // Commit the bytes and classify each as ordered or raced: a write
        // whose interval began at or after a byte's previous commit has seen
        // it (synchronized); an older base means two unordered intervals
        // stored to the same byte — a data race, content unspecified.
        let view_ptr = node * num_pages + page.idx();
        let single_writer = self.single_writer;
        let shadow = self.shadow(page);
        shadow.version += 1;
        let shadow_version = shadow.version;
        if shadow_version != new_version && !single_writer {
            self.violate(format!(
                "finalize of page {} at node {node}: directory version {new_version} \
                 but this is finalized interval {shadow_version}",
                page.idx()
            ));
        }
        let commit_mark =
            u32::try_from(self.shadows[page.idx()].as_ref().unwrap().version).unwrap_or(u32::MAX);
        let view = self.views[view_ptr].as_ref().expect("created above");
        let shadow = self.shadows[page.idx()].as_mut().expect("created above");
        for &(s, e) in &merged {
            for b in s as usize..e as usize {
                let ordered =
                    base_version >= shadow.last_commit[b] as u64 || shadow.last_commit[b] == 0;
                shadow.committed[b] = view.data[b];
                shadow.set_hazy(b, !ordered);
                shadow.last_commit[b] = commit_mark;
            }
        }
        if still_valid {
            let view = self.views[view_ptr].as_mut().expect("created above");
            view.base_version = new_version;
        }
    }

    // --------------------------------------------------------------
    // Event hooks (single-writer)
    // --------------------------------------------------------------

    /// Node `node` crashed at a barrier boundary: its physical copies are
    /// gone, so every modelled view for it is dropped. The committed image
    /// — stable storage in the recovery model — is untouched; the node's
    /// views are rebuilt by the ordinary fetches recovery triggers.
    pub fn on_crash(&mut self, node: usize) {
        for p in 0..self.num_pages {
            self.views[node * self.num_pages + p] = None;
        }
    }

    /// A node fetched a page copy under the single-writer protocol: the
    /// copy is the current global contents.
    pub fn on_fetch_sw(&mut self, node: usize, page: PageId) {
        self.report.fetches_checked += 1;
        let committed: Box<[u8; PAGE_SIZE]> = match &self.shadows[page.idx()] {
            Some(s) => s.committed.clone(),
            None => Box::new([0; PAGE_SIZE]),
        };
        let num_pages = self.num_pages;
        let view = Self::view_mut(&mut self.views, num_pages, node, page);
        view.data = committed;
    }

    // --------------------------------------------------------------
    // Checks
    // --------------------------------------------------------------

    /// At a lock release, every page written under the lock must have been
    /// finalized (published to the next acquirer) and the directory version
    /// must match the finalized-interval count.
    pub fn check_lock_release(&mut self, node: usize, pages: &[PageId], directory: &PageDirectory) {
        self.report.lock_releases_checked += 1;
        for &page in pages {
            let view = &self.views[node * self.num_pages + page.idx()];
            if let Some(view) = view {
                if !view.pending.is_empty() {
                    self.violate(format!(
                        "lock release at node {node}: page {} still has {} \
                         un-finalized write spans",
                        page.idx(),
                        view.pending.len()
                    ));
                }
            }
            if !self.single_writer {
                let shadow_version = self.shadows[page.idx()].as_ref().map_or(0, |s| s.version);
                let dir_version = directory.version(page);
                if shadow_version != dir_version {
                    self.violate(format!(
                        "lock release at node {node}: page {} directory version \
                         {dir_version} vs {shadow_version} finalized intervals",
                        page.idx()
                    ));
                }
            }
        }
    }

    /// At a barrier, checks release-consistency visibility for every page
    /// on every node: validity implies currency, and every valid copy's
    /// contents must equal the committed image (outside raced bytes).
    pub fn check_barrier(&mut self, nodes: &[NodeState], directory: &PageDirectory) {
        self.report.barriers_checked += 1;
        let mut compared = 0u64;
        let zeros = [0u8; PAGE_SIZE];
        for p in 0..self.num_pages {
            let page = PageId(p as u32);
            let shadow_version = self.shadows[p].as_ref().map_or(0, |s| s.version);
            if !self.single_writer && directory.version(page) != shadow_version {
                let dv = directory.version(page);
                self.violate(format!(
                    "barrier: page {p} directory version {dv} vs {shadow_version} \
                     finalized intervals"
                ));
            }
            for (n, node) in nodes.iter().enumerate() {
                let view = &self.views[n * self.num_pages + p];
                if let Some(view) = view {
                    if !self.single_writer && !view.pending.is_empty() {
                        self.violate(format!(
                            "barrier: node {n} page {p} carries {} write spans past \
                             the barrier without finalization",
                            view.pending.len()
                        ));
                        continue;
                    }
                }
                if !node.pages.valid(p) {
                    continue; // an invalid copy may be arbitrarily stale
                }
                if !node.pages.has_copy(p) {
                    self.violate(format!("barrier: node {n} page {p} valid without a copy"));
                    continue;
                }
                if !self.single_writer && node.pages.applied_version(p) != directory.version(page) {
                    let (av, dv) = (node.pages.applied_version(p), directory.version(page));
                    self.violate(format!(
                        "barrier: node {n} page {p} valid at version {av} but the \
                         directory is at {dv}"
                    ));
                    continue;
                }
                // Content check: the valid copy must show the committed image.
                let Some(shadow) = &self.shadows[p] else {
                    // Never written: both the view (if any) and the reference
                    // are all-zeros by construction.
                    continue;
                };
                let data: &[u8; PAGE_SIZE] = match view {
                    Some(v) => &v.data,
                    None => &zeros,
                };
                // Word-granular comparison: whole 64-byte blocks compare as
                // slices (memcmp); only blocks containing raced bytes fall
                // back to byte stepping.
                let mut mismatch = None;
                'blocks: for (w, &hazy_word) in shadow.hazy.iter().enumerate() {
                    let lo = w * 64;
                    let hi = lo + 64;
                    if hazy_word == 0 {
                        compared += 64;
                        if data[lo..hi] != shadow.committed[lo..hi] {
                            mismatch = (lo..hi).find(|&b| data[b] != shadow.committed[b]);
                            break 'blocks;
                        }
                    } else {
                        let block = data[lo..hi].iter().zip(&shadow.committed[lo..hi]);
                        for (bit, (&got, &want)) in block.enumerate() {
                            if hazy_word >> bit & 1 != 0 {
                                continue;
                            }
                            compared += 1;
                            if got != want {
                                mismatch = Some(lo + bit);
                                break 'blocks;
                            }
                        }
                    }
                }
                if let Some(b) = mismatch {
                    let (got, want) = (data[b], shadow.committed[b]);
                    self.violate(format!(
                        "barrier: node {n} page {p} byte {b} reads {got:#04x} but the \
                         reference memory holds {want:#04x}"
                    ));
                }
            }
        }
        self.report.bytes_compared += compared;
    }

    /// Differential check at a barrier: the committed image must agree with
    /// the protocol-independent [`VisibleImage`] model on every byte that
    /// is neither order-sensitive (the model's mask) nor hazy (the
    /// oracle's). Any disagreement means the protocol delivered a value the
    /// program could not have produced under *any* legal ordering.
    pub fn check_visible(&mut self, image: &VisibleImage) {
        let zeros = [0u8; PAGE_SIZE];
        let mut compared = 0u64;
        let mut mismatch = None;
        'pages: for p in 0..self.num_pages.min(image.num_pages()) {
            let shadow = self.shadows[p].as_deref();
            let committed: &[u8; PAGE_SIZE] = shadow.map_or(&zeros, |s| &s.committed);
            let modeled: &[u8; PAGE_SIZE] = image.page_data(p).unwrap_or(&zeros);
            for b in 0..PAGE_SIZE {
                if image.is_sensitive(p, b) {
                    continue;
                }
                if let Some(s) = shadow {
                    if s.hazy[b / 64] >> (b % 64) & 1 == 1 {
                        continue;
                    }
                }
                compared += 1;
                if committed[b] != modeled[b] {
                    mismatch = Some((p, b, committed[b], modeled[b]));
                    break 'pages;
                }
            }
        }
        self.report.bytes_compared += compared;
        if let Some((p, b, got, want)) = mismatch {
            let iter = self.iteration;
            self.violate(format!(
                "visible-memory check (iteration {iter}): page {p} byte {b} committed \
                 {got:#04x} but the program-order model holds {want:#04x}"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(page: u32, start: u16, end: u16) -> PageSpan {
        PageSpan {
            page: PageId(page),
            start,
            end,
        }
    }

    #[test]
    fn write_fetch_finalize_round_trip_is_clean() {
        let mut o = CoherenceOracle::new(2, 4, false);
        o.begin_iteration(0);
        // Node 1 writes page 0, finalizes; node 0 fetches it.
        o.on_write(1, 0, span(0, 0, 64));
        o.on_write(1, 0, span(0, 64, 128)); // adjacent: one fragment
        o.on_finalize(1, PageId(0), 128, 1, 1, true);
        o.on_fetch(0, PageId(0), 1);
        assert_eq!(o.first_violation(), None);
        assert_eq!(o.report().finalizes_checked, 1);
        assert_eq!(o.report().fetches_checked, 1);
    }

    #[test]
    fn fragment_mismatch_is_flagged() {
        let mut o = CoherenceOracle::new(1, 1, false);
        o.on_write(0, 0, span(0, 0, 8));
        o.on_write(0, 0, span(0, 100, 108));
        // Engine claims one fragment of 16 bytes; oracle merged two.
        o.on_finalize(0, PageId(0), 16, 1, 1, true);
        assert!(o.first_violation().unwrap().contains("independent merge"));
    }

    #[test]
    fn version_drift_is_flagged() {
        let mut o = CoherenceOracle::new(1, 1, false);
        o.on_fetch(0, PageId(0), 3); // directory claims v3, nothing finalized
        assert!(o.first_violation().unwrap().contains("version"));
    }

    #[test]
    fn raced_bytes_go_hazy_and_ordered_writes_recover_them() {
        let mut o = CoherenceOracle::new(2, 1, false);
        // Two nodes write the same byte range in the same interval, both
        // from base version 0: a data race.
        o.on_write(0, 0, span(0, 0, 8));
        o.on_write(1, 1, span(0, 0, 8));
        o.on_finalize(0, PageId(0), 8, 1, 1, true);
        o.on_finalize(1, PageId(0), 8, 1, 2, false);
        assert_eq!(o.first_violation(), None);
        assert_eq!(o.report().hazy_bytes, 8);
        // A writer that has seen version 2 re-writes: definite again.
        o.on_fetch(0, PageId(0), 2);
        o.on_write(0, 0, span(0, 0, 8));
        o.on_finalize(0, PageId(0), 8, 1, 3, true);
        assert_eq!(o.report().hazy_bytes, 0);
        assert_eq!(o.first_violation(), None);
    }

    #[test]
    fn single_writer_commits_eagerly() {
        let mut o = CoherenceOracle::new(2, 1, true);
        o.on_write(0, 0, span(0, 0, 16));
        o.on_fetch_sw(1, PageId(0));
        // The reader's copy equals the committed image immediately.
        let view = o.views[1].as_ref().unwrap();
        let shadow = o.shadows[0].as_ref().unwrap();
        assert_eq!(view.data[..16], shadow.committed[..16]);
        assert_eq!(o.first_violation(), None);
    }
}
