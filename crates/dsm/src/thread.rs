//! Per-thread execution state.

use crate::program::{LockId, Op};
use acorr_mem::{AccessKind, PageId, PageSpan};
use acorr_sim::{NodeId, SimTime};

/// What a thread is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStatus {
    /// Runnable.
    Ready,
    /// Waiting for a remote fetch or a lock grant; `wake_at` says when
    /// ([`SimTime::MAX`] while queued on a held lock).
    Blocked,
    /// Parked at a barrier.
    AtBarrier,
    /// Finished this iteration's script.
    Done,
}

/// An access op in progress, split into page spans; survives across blocks
/// so a thread resumes mid-op after a remote fetch completes.
#[derive(Debug, Clone)]
pub struct OngoingAccess {
    /// Read or write.
    pub kind: AccessKind,
    /// The per-page spans of the access.
    pub spans: Vec<PageSpan>,
    /// Index of the next span to process.
    pub next: usize,
}

/// Execution state of one application thread.
#[derive(Debug, Clone)]
pub struct ThreadState {
    /// Node currently hosting the thread.
    pub node: NodeId,
    /// Current status.
    pub status: ThreadStatus,
    /// When a blocked thread becomes runnable.
    pub wake_at: SimTime,
    /// This iteration's script.
    pub script: Vec<Op>,
    /// Program counter into `script`.
    pub pc: usize,
    /// Access op in progress, if any.
    pub ongoing: Option<OngoingAccess>,
    /// Locks currently held (innermost last).
    pub held_locks: Vec<LockId>,
    /// Pages written while holding at least one lock (finalized at unlock).
    pub lock_writes: Vec<PageId>,
}

impl ThreadState {
    /// A fresh thread on `node` with an empty script.
    pub fn new(node: NodeId) -> Self {
        ThreadState {
            node,
            status: ThreadStatus::Done,
            wake_at: SimTime::ZERO,
            script: Vec::new(),
            pc: 0,
            ongoing: None,
            held_locks: Vec::new(),
            lock_writes: Vec::new(),
        }
    }

    /// Loads a new iteration's script and resets execution state.
    pub fn load(&mut self, script: Vec<Op>) {
        self.script = script;
        self.pc = 0;
        self.ongoing = None;
        self.status = ThreadStatus::Ready;
        self.wake_at = SimTime::ZERO;
        debug_assert!(self.held_locks.is_empty(), "locks held across iterations");
        self.lock_writes.clear();
    }

    /// The op at the program counter, if the script has not ended.
    pub fn current_op(&self) -> Option<Op> {
        self.script.get(self.pc).copied()
    }

    /// True when the script is exhausted.
    pub fn finished(&self) -> bool {
        self.pc >= self.script.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_resets_state() {
        let mut t = ThreadState::new(NodeId(2));
        t.pc = 5;
        t.status = ThreadStatus::Done;
        t.load(vec![Op::Barrier]);
        assert_eq!(t.pc, 0);
        assert_eq!(t.status, ThreadStatus::Ready);
        assert_eq!(t.current_op(), Some(Op::Barrier));
        assert!(!t.finished());
        t.pc = 1;
        assert!(t.finished());
        assert_eq!(t.current_op(), None);
    }
}
