//! Engine error type.

use crate::program::ScriptError;
use acorr_sim::{FaultSpecError, TopologyError};
use std::fmt;

/// Errors surfaced by the DSM engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsmError {
    /// The cluster or mapping was malformed.
    Topology(TopologyError),
    /// A program script failed validation.
    Script(ScriptError),
    /// A `--faults` specification string failed to parse.
    FaultSpec(FaultSpecError),
    /// The mapping covers a different number of threads than the program.
    MappingMismatch {
        /// Threads in the mapping.
        mapping_threads: usize,
        /// Threads declared by the program.
        program_threads: usize,
    },
    /// Execution stalled: no thread can make progress but not all threads
    /// have finished (e.g. a lock acquired and never released).
    Deadlock {
        /// The iteration during which the stall occurred.
        iteration: usize,
    },
    /// The conformance oracle detected a release-consistency violation:
    /// the protocol's visible state diverged from the sequential reference
    /// memory.
    OracleViolation {
        /// The iteration during which the violation was detected.
        iteration: usize,
        /// Human-readable description of the first violated check.
        detail: String,
    },
    /// An artifact or report could not be read or written. Carries the
    /// rendered path and error text rather than [`std::io::Error`] so the
    /// variant stays `Clone`/`Eq` like the rest of the enum.
    Io {
        /// Path of the file or directory the operation touched.
        path: String,
        /// The underlying I/O error, rendered.
        detail: String,
    },
}

impl DsmError {
    /// Wraps an [`std::io::Error`] with the path it occurred on.
    pub fn io(path: impl Into<String>, err: &std::io::Error) -> Self {
        DsmError::Io {
            path: path.into(),
            detail: err.to_string(),
        }
    }
}

impl fmt::Display for DsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsmError::Topology(e) => write!(f, "topology error: {e}"),
            DsmError::Script(e) => write!(f, "script error: {e}"),
            DsmError::FaultSpec(e) => write!(f, "fault spec error: {e}"),
            DsmError::MappingMismatch {
                mapping_threads,
                program_threads,
            } => write!(
                f,
                "mapping covers {mapping_threads} threads but program declares {program_threads}"
            ),
            DsmError::Deadlock { iteration } => {
                write!(f, "deadlock detected during iteration {iteration}")
            }
            DsmError::OracleViolation { iteration, detail } => {
                write!(
                    f,
                    "coherence oracle violation in iteration {iteration}: {detail}"
                )
            }
            DsmError::Io { path, detail } => {
                write!(f, "i/o error on {path}: {detail}")
            }
        }
    }
}

impl std::error::Error for DsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DsmError::Topology(e) => Some(e),
            DsmError::Script(e) => Some(e),
            DsmError::FaultSpec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for DsmError {
    fn from(e: TopologyError) -> Self {
        DsmError::Topology(e)
    }
}

impl From<ScriptError> for DsmError {
    fn from(e: ScriptError) -> Self {
        DsmError::Script(e)
    }
}

impl From<FaultSpecError> for DsmError {
    fn from(e: FaultSpecError) -> Self {
        DsmError::FaultSpec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_and_sources() {
        let e: DsmError = TopologyError::NoNodes.into();
        assert!(e.to_string().contains("topology"));
        assert!(e.source().is_some());
        let d = DsmError::Deadlock { iteration: 3 };
        assert!(d.to_string().contains("iteration 3"));
        assert!(d.source().is_none());
        let o = DsmError::OracleViolation {
            iteration: 2,
            detail: "byte 7 mismatch".into(),
        };
        assert!(o.to_string().contains("oracle"));
        assert!(o.to_string().contains("byte 7 mismatch"));
        assert!(o.source().is_none());
    }

    #[test]
    fn io_errors_carry_path_and_detail() {
        let underlying = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied");
        let e = DsmError::io("results/BENCH.json", &underlying);
        assert!(e.to_string().contains("results/BENCH.json"));
        assert!(e.to_string().contains("denied"));
        assert!(e.source().is_none());
        assert_eq!(e.clone(), e);
    }

    #[test]
    fn fault_spec_errors_convert_and_display() {
        let parse_err = acorr_sim::FaultPlan::parse("nonsense-preset").unwrap_err();
        let e: DsmError = parse_err.into();
        assert!(e.to_string().starts_with("fault spec error:"));
        assert!(e.source().is_some());
    }
}
