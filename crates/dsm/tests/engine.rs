//! Integration tests for the DSM engine: coherence, diffs, multi-writer
//! merging, locks, garbage collection, migration, and both tracking
//! mechanisms, exercised through small hand-built programs.

use acorr_dsm::{Dsm, DsmConfig, DsmError, LockId, Op, Program};
use acorr_mem::PAGE_SIZE;
use acorr_sim::{ClusterConfig, Mapping, NodeId};

/// A program built from explicit per-thread, per-iteration scripts.
struct Scripted {
    name: &'static str,
    shared_bytes: u64,
    locks: usize,
    /// scripts[iteration][thread]
    scripts: Vec<Vec<Vec<Op>>>,
}

impl Scripted {
    fn new(shared_pages: u64, scripts: Vec<Vec<Vec<Op>>>) -> Self {
        Scripted {
            name: "scripted",
            shared_bytes: shared_pages * PAGE_SIZE as u64,
            locks: 0,
            scripts,
        }
    }

    fn with_locks(mut self, locks: usize) -> Self {
        self.locks = locks;
        self
    }
}

impl Program for Scripted {
    fn name(&self) -> &str {
        self.name
    }
    fn shared_bytes(&self) -> u64 {
        self.shared_bytes
    }
    fn num_threads(&self) -> usize {
        self.scripts[0].len()
    }
    fn num_locks(&self) -> usize {
        self.locks
    }
    fn script(&self, thread: usize, iteration: usize) -> Vec<Op> {
        let it = iteration.min(self.scripts.len() - 1);
        self.scripts[it][thread].clone()
    }
}

fn dsm_for(nodes: usize, program: Scripted) -> Dsm<Scripted> {
    let threads = program.num_threads();
    let cluster = ClusterConfig::new(nodes, threads).unwrap();
    let mapping = Mapping::stretch(&cluster);
    Dsm::new(DsmConfig::new(cluster), program, mapping).unwrap()
}

const PAGE: u64 = PAGE_SIZE as u64;

// ---------------------------------------------------------------------
// Basic coherence
// ---------------------------------------------------------------------

#[test]
fn local_reads_never_miss() {
    // Both threads on node 0, which owns all pages initially.
    let p = Scripted::new(
        4,
        vec![vec![vec![Op::read(0, 2 * PAGE)], vec![Op::read(0, PAGE)]]],
    );
    let cluster = ClusterConfig::new(1, 2).unwrap();
    let mapping = Mapping::stretch(&cluster);
    let mut dsm = Dsm::new(DsmConfig::new(cluster), p, mapping).unwrap();
    let stats = dsm.run_iterations(1).unwrap();
    assert_eq!(stats.remote_misses, 0);
    assert_eq!(
        stats.net.total_bytes() - stats.net.bytes(acorr_sim::MessageKind::Barrier),
        0
    );
}

#[test]
fn cold_miss_fetches_full_page() {
    // Thread 1 on node 1 reads a page it never had.
    let p = Scripted::new(2, vec![vec![vec![], vec![Op::read(PAGE, 64)]]]);
    let mut dsm = dsm_for(2, p);
    let stats = dsm.run_iterations(1).unwrap();
    assert_eq!(stats.remote_misses, 1);
    assert_eq!(stats.net.messages(acorr_sim::MessageKind::PageFetch), 1);
    assert_eq!(stats.net.bytes(acorr_sim::MessageKind::PageFetch), PAGE);
}

#[test]
fn second_read_of_cached_page_is_free() {
    let p = Scripted::new(2, vec![vec![vec![], vec![Op::read(PAGE, 64)]]]);
    let mut dsm = dsm_for(2, p);
    let first = dsm.run_iterations(1).unwrap();
    assert_eq!(first.remote_misses, 1);
    let second = dsm.run_iterations(1).unwrap();
    assert_eq!(
        second.remote_misses, 0,
        "page stays cached across iterations"
    );
}

#[test]
fn write_invalidation_causes_diff_fetch() {
    // Iteration scripts: t0 (node 0) writes 100 bytes of page 0; t1 (node 1)
    // reads the page. First iteration: t1 cold-misses. Later iterations: the
    // barrier publishes t0's diff, t1 refetches just the diff.
    let p = Scripted::new(
        1,
        vec![vec![
            vec![Op::write(0, 100), Op::Barrier],
            vec![Op::Barrier, Op::read(0, 100)],
        ]],
    );
    let mut dsm = dsm_for(2, p);
    let first = dsm.run_iterations(1).unwrap();
    // t1 misses after the barrier: the diff from t0's write was finalized at
    // the explicit barrier, so the fetch is page (cold) + nothing... t1 has
    // no copy: full page + pending diff.
    assert_eq!(first.remote_misses, 1);
    assert_eq!(first.diffs_created, 1);
    let second = dsm.run_iterations(1).unwrap();
    // Now t1 has a copy at the version it fetched; t0's new write this
    // iteration invalidates it again; t1 fetches only the new diff.
    assert_eq!(second.remote_misses, 1);
    assert_eq!(second.net.messages(acorr_sim::MessageKind::PageFetch), 0);
    assert_eq!(second.net.messages(acorr_sim::MessageKind::DiffFetch), 1);
    // Diff bytes: 100 dirty + 8 range + 16 header.
    assert_eq!(second.net.bytes(acorr_sim::MessageKind::DiffFetch), 124);
}

#[test]
fn diff_size_reflects_merged_dirty_ranges() {
    // Two disjoint writes to one page → two fragments.
    let p = Scripted::new(
        1,
        vec![vec![vec![Op::write(0, 40), Op::write(1000, 60)], vec![]]],
    );
    let mut dsm = dsm_for(2, p);
    let stats = dsm.run_iterations(1).unwrap();
    assert_eq!(stats.diffs_created, 1);
    // 100 dirty + 2*8 fragment + 16 header.
    assert_eq!(stats.diff_bytes_created, 132);
}

#[test]
fn writer_keeps_its_copy_valid() {
    // t0 writes its page every iteration and re-reads it; never misses.
    let p = Scripted::new(
        1,
        vec![vec![vec![Op::write(0, 64), Op::read(0, 64)], vec![]]],
    );
    let mut dsm = dsm_for(2, p);
    let stats = dsm.run_iterations(5).unwrap();
    assert_eq!(stats.remote_misses, 0);
    assert_eq!(stats.diffs_created, 5);
}

#[test]
fn concurrent_writers_exchange_diffs() {
    // Both threads (different nodes) write disjoint halves of page 0 each
    // iteration, then read the whole page next iteration.
    let p = Scripted::new(
        1,
        vec![vec![
            vec![Op::read(0, PAGE), Op::write(0, 128)],
            vec![Op::read(0, PAGE), Op::write(2048, 128)],
        ]],
    );
    let mut dsm = dsm_for(2, p);
    let first = dsm.run_iterations(1).unwrap();
    // Iteration 1: t1 cold-misses on the read.
    assert_eq!(first.remote_misses, 1);
    assert_eq!(first.diffs_created, 2, "both writers finalize at barrier");
    let second = dsm.run_iterations(1).unwrap();
    // Both copies were invalidated (two concurrent writers): each node
    // misses once and fetches exactly the *other* node's diff.
    assert_eq!(second.remote_misses, 2);
    assert_eq!(second.net.messages(acorr_sim::MessageKind::PageFetch), 0);
    assert_eq!(second.net.messages(acorr_sim::MessageKind::DiffFetch), 2);
}

#[test]
fn twin_created_once_per_interval() {
    let p = Scripted::new(
        1,
        vec![vec![vec![
            Op::write(0, 8),
            Op::write(8, 8),
            Op::write(16, 8),
        ]]],
    );
    let cluster = ClusterConfig::new(1, 1).unwrap();
    let mut dsm = Dsm::new(DsmConfig::new(cluster), p, Mapping::stretch(&cluster)).unwrap();
    let stats = dsm.run_iterations(1).unwrap();
    assert_eq!(stats.twin_faults, 1);
    assert_eq!(stats.diffs_created, 1);
    assert_eq!(stats.diff_bytes_created, 24 + 8 + 16);
}

#[test]
fn multi_page_access_spans_pages() {
    // One read spanning 3 pages from a remote node: 3 cold misses.
    let p = Scripted::new(4, vec![vec![vec![], vec![Op::read(100, 3 * PAGE)]]]);
    let mut dsm = dsm_for(2, p);
    let stats = dsm.run_iterations(1).unwrap();
    assert_eq!(stats.remote_misses, 4, "100 + 3*PAGE straddles 4 pages");
}

// ---------------------------------------------------------------------
// Barriers and time
// ---------------------------------------------------------------------

#[test]
fn barrier_counts_include_implicit_end_barrier() {
    let p = Scripted::new(1, vec![vec![vec![Op::Barrier], vec![Op::Barrier]]]);
    let mut dsm = dsm_for(2, p);
    let stats = dsm.run_iterations(1).unwrap();
    assert_eq!(stats.barriers, 2);
}

#[test]
fn time_advances_with_compute() {
    let p = Scripted::new(1, vec![vec![vec![Op::compute(1_000_000)], vec![]]]);
    let mut dsm = dsm_for(2, p);
    let stats = dsm.run_iterations(1).unwrap();
    assert!(stats.elapsed.as_nanos() >= 1_000_000);
}

#[test]
fn latency_hiding_overlaps_fetches_across_threads() {
    // Node 1 cold-misses two pages. When the two fetches come from two
    // sibling threads, their network latencies overlap; when one thread
    // issues both, they serialize. Same work, same node counts — the
    // multithreaded variant must be faster.
    let overlapped = Scripted::new(
        4,
        vec![vec![
            vec![],
            vec![],
            vec![Op::read(2 * PAGE, 64)],
            vec![Op::read(3 * PAGE, 64)],
        ]],
    );
    let serialized = Scripted::new(
        4,
        vec![vec![
            vec![],
            vec![],
            vec![Op::read(2 * PAGE, 64), Op::read(3 * PAGE, 64)],
            vec![],
        ]],
    );
    let cluster = ClusterConfig::new(2, 4).unwrap();
    let run = |p: Scripted| {
        let mut dsm = Dsm::new(DsmConfig::new(cluster), p, Mapping::stretch(&cluster)).unwrap();
        dsm.run_iterations(1).unwrap()
    };
    let a = run(overlapped);
    let b = run(serialized);
    assert_eq!(a.remote_misses, 2);
    assert_eq!(b.remote_misses, 2);
    let net = acorr_sim::NetworkModel::default();
    assert!(
        a.elapsed + net.transfer_time(PAGE) / 2 < b.elapsed,
        "overlapped {} should clearly undercut serialized {}",
        a.elapsed,
        b.elapsed
    );
}

#[test]
fn deterministic_across_runs() {
    let make = || {
        let p = Scripted::new(
            2,
            vec![vec![
                vec![Op::write(0, 64), Op::Barrier, Op::read(PAGE, 64)],
                vec![Op::read(0, 64), Op::Barrier, Op::write(PAGE, 64)],
            ]],
        );
        dsm_for(2, p)
    };
    let a = make().run_iterations(3).unwrap();
    let b = make().run_iterations(3).unwrap();
    assert_eq!(a, b);
}

// ---------------------------------------------------------------------
// Locks
// ---------------------------------------------------------------------

#[test]
fn uncontended_local_lock_is_cheap() {
    let l = LockId(0);
    let p = Scripted::new(
        1,
        vec![vec![
            vec![Op::Lock(l), Op::write(0, 8), Op::Unlock(l)],
            vec![],
        ]],
    )
    .with_locks(1);
    let mut dsm = dsm_for(2, p);
    let stats = dsm.run_iterations(1).unwrap();
    assert_eq!(stats.lock_acquires, 1);
    assert_eq!(stats.remote_lock_acquires, 0, "fresh lock granted locally");
}

#[test]
fn lock_ping_pong_counts_remote_acquires() {
    let l = LockId(0);
    let script = vec![Op::Lock(l), Op::write(0, 8), Op::Unlock(l)];
    let p = Scripted::new(1, vec![vec![script.clone(), script]]).with_locks(1);
    let mut dsm = dsm_for(2, p);
    let stats = dsm.run_iterations(2).unwrap();
    assert_eq!(stats.lock_acquires, 4);
    // After the first local grant, the lock alternates nodes every acquire.
    assert_eq!(stats.remote_lock_acquires, 3);
    assert!(stats.net.messages(acorr_sim::MessageKind::Lock) >= 6);
}

#[test]
fn release_publishes_locked_writes_to_next_acquirer() {
    let l = LockId(0);
    // Both threads increment a shared counter under the lock; the second
    // acquirer must fetch the first's diff *within* the same interval.
    let script = |_: usize| vec![Op::Lock(l), Op::read(0, 8), Op::write(0, 8), Op::Unlock(l)];
    let p = Scripted::new(1, vec![vec![script(0), script(1)]]).with_locks(1);
    let mut dsm = dsm_for(2, p);
    let first = dsm.run_iterations(1).unwrap();
    // Whichever thread goes second takes a miss on the counter page even
    // though no barrier intervened.
    assert!(first.remote_misses >= 1);
    assert!(
        first.diffs_created >= 1,
        "unlock finalizes the locked write"
    );
}

#[test]
fn contended_lock_serializes() {
    let l = LockId(0);
    let hold = vec![Op::Lock(l), Op::compute(1_000_000), Op::Unlock(l)];
    let p = Scripted::new(1, vec![vec![hold.clone(), hold.clone(), hold]]).with_locks(1);
    let cluster = ClusterConfig::new(3, 3).unwrap();
    let mapping = Mapping::stretch(&cluster);
    let mut dsm = Dsm::new(DsmConfig::new(cluster), p, mapping).unwrap();
    let stats = dsm.run_iterations(1).unwrap();
    // Three 1 ms critical sections cannot overlap.
    assert!(stats.elapsed.as_nanos() >= 3_000_000);
    assert_eq!(stats.lock_acquires, 3);
}

#[test]
fn cyclic_lock_wait_is_reported_as_deadlock() {
    // Threads on nodes 1 and 2 take their first lock, then block on a cold
    // page fetch (yielding the engine), then request each other's lock: a
    // classic ABBA cycle. The node-0 thread is a bystander.
    let a = LockId(0);
    let b = LockId(1);
    let p = Scripted::new(
        4,
        vec![vec![
            vec![],
            vec![
                Op::Lock(a),
                Op::read(2 * PAGE, 8), // cold miss: blocks, lets node 2 run
                Op::Lock(b),
                Op::Unlock(b),
                Op::Unlock(a),
            ],
            vec![
                Op::Lock(b),
                Op::read(3 * PAGE, 8),
                Op::Lock(a),
                Op::Unlock(a),
                Op::Unlock(b),
            ],
        ]],
    )
    .with_locks(2);
    let cluster = ClusterConfig::new(3, 3).unwrap();
    let mut dsm = Dsm::new(DsmConfig::new(cluster), p, Mapping::stretch(&cluster)).unwrap();
    assert_eq!(
        dsm.run_iterations(1),
        Err(DsmError::Deadlock { iteration: 0 })
    );
}

#[test]
fn lock_across_barrier_rejected() {
    let l = LockId(0);
    let p = Scripted::new(
        1,
        vec![vec![
            vec![Op::Lock(l), Op::Barrier, Op::Unlock(l)],
            vec![Op::Barrier],
        ]],
    )
    .with_locks(1);
    let mut dsm = dsm_for(2, p);
    assert!(matches!(
        dsm.run_iterations(1),
        Err(DsmError::Script(
            acorr_dsm::ScriptError::LockAcrossBarrier { .. }
        ))
    ));
}

// ---------------------------------------------------------------------
// Garbage collection
// ---------------------------------------------------------------------

#[test]
fn gc_consolidates_and_invalidates() {
    // Low threshold forces a GC; t0 writes two pages every iteration.
    let p = Scripted::new(
        2,
        vec![vec![
            vec![Op::write(0, 64), Op::write(PAGE, 64)],
            vec![Op::read(0, 8)],
        ]],
    );
    let cluster = ClusterConfig::new(2, 2).unwrap();
    let config = DsmConfig::new(cluster).with_gc_threshold(3);
    let mut dsm = Dsm::new(config, p, Mapping::stretch(&cluster)).unwrap();
    let stats = dsm.run_iterations(3).unwrap();
    assert!(stats.gc_runs >= 1, "threshold of 3 records must trip");
    assert!(stats.gc_pages >= 2);
    // After GC the reader's copy predates the base → full-page refetch.
    assert!(stats.net.messages(acorr_sim::MessageKind::PageFetch) > 1);
}

#[test]
fn gc_traffic_is_accounted() {
    // Two nodes write disjoint halves of the same page every iteration, so
    // at consolidation the new owner is always missing the other writer's
    // diff and must fetch it (GC data traffic).
    let p = Scripted::new(
        1,
        vec![vec![
            vec![Op::read(0, PAGE), Op::write(0, 256)],
            vec![Op::read(0, PAGE), Op::write(2048, 256)],
        ]],
    );
    let cluster = ClusterConfig::new(2, 2).unwrap();
    let config = DsmConfig::new(cluster).with_gc_threshold(1);
    let mut dsm = Dsm::new(config, p, Mapping::stretch(&cluster)).unwrap();
    let stats = dsm.run_iterations(4).unwrap();
    assert!(stats.gc_runs >= 1);
    assert!(stats.net.bytes(acorr_sim::MessageKind::Gc) > 0);
}

#[test]
fn gc_is_free_when_owner_already_current() {
    // A single writer is its own consolidation target: GC runs but moves no
    // data.
    let p = Scripted::new(1, vec![vec![vec![Op::write(0, 256)], vec![Op::read(0, 8)]]]);
    let cluster = ClusterConfig::new(2, 2).unwrap();
    let config = DsmConfig::new(cluster).with_gc_threshold(1);
    let mut dsm = Dsm::new(config, p, Mapping::stretch(&cluster)).unwrap();
    let stats = dsm.run_iterations(4).unwrap();
    assert!(stats.gc_runs >= 1);
    assert_eq!(stats.net.bytes(acorr_sim::MessageKind::Gc), 0);
}

// ---------------------------------------------------------------------
// Active tracking
// ---------------------------------------------------------------------

#[test]
fn active_tracking_records_exact_access_sets() {
    // t0 touches pages {0,1}; t1 touches {1,2}.
    let p = Scripted::new(
        3,
        vec![vec![
            vec![Op::read(0, 2 * PAGE)],
            vec![Op::read(PAGE, 2 * PAGE)],
        ]],
    );
    let mut dsm = dsm_for(2, p);
    let (stats, matrix) = dsm.run_tracked_iteration().unwrap();
    assert!(matrix.observed(0, acorr_mem::PageId(0)));
    assert!(matrix.observed(0, acorr_mem::PageId(1)));
    assert!(!matrix.observed(0, acorr_mem::PageId(2)));
    assert!(matrix.observed(1, acorr_mem::PageId(1)));
    assert!(matrix.observed(1, acorr_mem::PageId(2)));
    assert_eq!(matrix.shared_pages(0, 1), 1);
    assert_eq!(stats.tracking_faults, 4, "one per (thread, page) touch");
}

#[test]
fn tracking_faults_count_per_thread_even_on_same_node() {
    // Two threads on ONE node read the SAME page: passive tracking would see
    // only the first; active tracking faults for both.
    let p = Scripted::new(1, vec![vec![vec![Op::read(0, 8)], vec![Op::read(0, 8)]]]);
    let cluster = ClusterConfig::new(1, 2).unwrap();
    let mut dsm = Dsm::new(DsmConfig::new(cluster), p, Mapping::stretch(&cluster)).unwrap();
    let (stats, matrix) = dsm.run_tracked_iteration().unwrap();
    assert_eq!(stats.tracking_faults, 2);
    assert_eq!(matrix.shared_pages(0, 1), 1);
}

#[test]
fn tracked_iteration_is_slower() {
    // Same program, tracked vs untracked, fresh instances (warm both first).
    let build = || {
        let scripts: Vec<Vec<Op>> = (0..4)
            .map(|t| vec![Op::read(t as u64 * PAGE, PAGE), Op::compute(100_000)])
            .collect();
        let p = Scripted::new(4, vec![scripts]);
        let cluster = ClusterConfig::new(2, 4).unwrap();
        let mut dsm = Dsm::new(DsmConfig::new(cluster), p, Mapping::stretch(&cluster)).unwrap();
        dsm.run_iterations(1).unwrap(); // warm caches
        dsm
    };
    let off = build().run_iterations(1).unwrap();
    let (on, _) = build().run_tracked_iteration().unwrap();
    assert!(
        on.elapsed > off.elapsed,
        "tracking on {} must exceed off {}",
        on.elapsed,
        off.elapsed
    );
}

#[test]
fn tracking_does_not_disturb_coherence_results() {
    // Stats other than faults/time should match an untracked run.
    let build = || {
        let p = Scripted::new(
            2,
            vec![vec![
                vec![Op::write(0, 64), Op::Barrier, Op::read(PAGE, 64)],
                vec![Op::read(0, 64), Op::Barrier, Op::write(PAGE, 64)],
            ]],
        );
        dsm_for(2, p)
    };
    let mut plain = build();
    let a = plain.run_iterations(1).unwrap();
    let mut tracked = build();
    let (b, _) = tracked.run_tracked_iteration().unwrap();
    assert_eq!(a.remote_misses, b.remote_misses);
    assert_eq!(a.diffs_created, b.diffs_created);
    assert_eq!(a.diff_bytes_created, b.diff_bytes_created);
    // And subsequent behaviour is unchanged.
    assert_eq!(
        plain.run_iterations(1).unwrap().remote_misses,
        tracked.run_iterations(1).unwrap().remote_misses
    );
}

#[test]
fn tracking_survives_multiple_barriers_per_iteration() {
    // Threads touch different pages in each barrier segment; the bitmap
    // accumulates across segments.
    let p = Scripted::new(
        2,
        vec![vec![
            vec![Op::read(0, 8), Op::Barrier, Op::read(PAGE, 8)],
            vec![Op::Barrier],
        ]],
    );
    let mut dsm = dsm_for(2, p);
    let (_, matrix) = dsm.run_tracked_iteration().unwrap();
    assert!(matrix.observed(0, acorr_mem::PageId(0)));
    assert!(matrix.observed(0, acorr_mem::PageId(1)));
    assert_eq!(matrix.pages_touched(1), 0);
}

// ---------------------------------------------------------------------
// Passive tracking
// ---------------------------------------------------------------------

#[test]
fn passive_tracking_sees_only_first_local_toucher() {
    // Two threads on node 1 both read page 0 (remote). Only the first
    // faults; the second reads the already-valid copy silently.
    let p = Scripted::new(
        1,
        vec![vec![
            vec![],
            vec![],
            vec![Op::read(0, 8)],
            vec![Op::read(0, 8)],
        ]],
    );
    let cluster = ClusterConfig::new(2, 4).unwrap();
    let mut dsm = Dsm::new(DsmConfig::new(cluster), p, Mapping::stretch(&cluster)).unwrap();
    dsm.enable_passive_tracking();
    dsm.run_iterations(1).unwrap();
    let obs = dsm.take_passive_observations().unwrap();
    assert_eq!(
        obs.total_observations(),
        1,
        "only the faulting thread is observed"
    );
}

#[test]
fn passive_tracking_misses_node0_locals_entirely() {
    // Threads on node 0 never fault (node 0 owns everything): passive
    // tracking learns nothing about them.
    let p = Scripted::new(1, vec![vec![vec![Op::read(0, 8)], vec![Op::read(0, 8)]]]);
    let cluster = ClusterConfig::new(1, 2).unwrap();
    let mut dsm = Dsm::new(DsmConfig::new(cluster), p, Mapping::stretch(&cluster)).unwrap();
    dsm.enable_passive_tracking();
    dsm.run_iterations(1).unwrap();
    let obs = dsm.take_passive_observations().unwrap();
    assert_eq!(obs.total_observations(), 0);
}

// ---------------------------------------------------------------------
// Migration
// ---------------------------------------------------------------------

#[test]
fn migration_moves_threads_and_charges_traffic() {
    let p = Scripted::new(2, vec![vec![vec![Op::read(0, 8)], vec![Op::read(PAGE, 8)]]]);
    let cluster = ClusterConfig::new(2, 2).unwrap();
    let mut dsm = Dsm::new(DsmConfig::new(cluster), p, Mapping::stretch(&cluster)).unwrap();
    dsm.run_iterations(1).unwrap();
    // Swap the two threads.
    let swapped = Mapping::from_assignment(&cluster, vec![NodeId(1), NodeId(0)]).unwrap();
    let report = dsm.migrate_to(swapped.clone()).unwrap();
    assert_eq!(report.moved, 2);
    assert_eq!(report.bytes, 2 * 64 * 1024);
    assert_eq!(dsm.mapping(), &swapped);
    assert_eq!(dsm.total_stats().migrations, 2);
    // The application keeps running correctly after migration.
    let stats = dsm.run_iterations(1).unwrap();
    // t0 now on node 1 reads page 0 (cached at node 1? no — node 1 never had
    // page 0): it cold-misses; t1 on node 0 reads page 1 which node 0 owns.
    assert_eq!(stats.remote_misses, 1);
}

#[test]
fn identity_migration_is_free() {
    let p = Scripted::new(1, vec![vec![vec![], vec![]]]);
    let cluster = ClusterConfig::new(2, 2).unwrap();
    let mapping = Mapping::stretch(&cluster);
    let mut dsm = Dsm::new(DsmConfig::new(cluster), p, mapping.clone()).unwrap();
    let report = dsm.migrate_to(mapping).unwrap();
    assert_eq!(report.moved, 0);
    assert_eq!(dsm.total_stats().migrations, 0);
}

#[test]
fn migration_report_rejects_wrong_thread_count() {
    let p = Scripted::new(1, vec![vec![vec![], vec![]]]);
    let cluster = ClusterConfig::new(2, 2).unwrap();
    let mut dsm = Dsm::new(DsmConfig::new(cluster), p, Mapping::stretch(&cluster)).unwrap();
    let other = ClusterConfig::new(2, 4).unwrap();
    assert!(matches!(
        dsm.migrate_to(Mapping::stretch(&other)),
        Err(DsmError::MappingMismatch { .. })
    ));
}

// ---------------------------------------------------------------------
// Construction errors
// ---------------------------------------------------------------------

#[test]
fn mapping_mismatch_rejected_at_construction() {
    let p = Scripted::new(1, vec![vec![vec![], vec![]]]);
    let cluster = ClusterConfig::new(2, 4).unwrap();
    assert!(matches!(
        Dsm::new(DsmConfig::new(cluster), p, Mapping::stretch(&cluster)),
        Err(DsmError::MappingMismatch { .. })
    ));
}

#[test]
fn swap_threads_is_a_balanced_export_import() {
    let p = Scripted::new(2, vec![vec![vec![Op::read(0, 8)], vec![Op::read(PAGE, 8)]]]);
    let cluster = ClusterConfig::new(2, 2).unwrap();
    let mut dsm = Dsm::new(DsmConfig::new(cluster), p, Mapping::stretch(&cluster)).unwrap();
    dsm.run_iterations(1).unwrap();
    let counts_before = dsm.mapping().node_counts();
    let report = dsm.swap_threads(0, 1).unwrap();
    assert_eq!(report.moved, 2);
    assert_eq!(dsm.mapping().node_counts(), counts_before, "balance kept");
    assert_eq!(dsm.mapping().node_of(0), NodeId(1));
    assert_eq!(dsm.mapping().node_of(1), NodeId(0));
    // Swapping threads on the same node is free.
    let same = dsm.swap_threads(0, 0).unwrap();
    assert_eq!(same.moved, 0);
    // Out-of-range indices are rejected.
    assert!(matches!(
        dsm.swap_threads(0, 99),
        Err(DsmError::MappingMismatch { .. })
    ));
    // The application still runs.
    dsm.run_iterations(1).unwrap();
}

#[test]
fn per_node_counters_partition_the_totals() {
    // Two nodes, each with one thread missing on its own distinct page.
    let p = Scripted::new(
        3,
        vec![vec![vec![Op::read(PAGE, 8)], vec![Op::read(2 * PAGE, 8)]]],
    );
    let mut dsm = dsm_for(2, p);
    let stats = dsm.run_iterations(1).unwrap();
    let per_node = dsm.node_misses();
    assert_eq!(per_node.iter().sum::<u64>(), stats.remote_misses);
    assert_eq!(per_node, vec![0, 1], "only node 1 lacks its page");
    let (tracked, _) = dsm.run_tracked_iteration().unwrap();
    let faults = dsm.node_tracking_faults();
    assert_eq!(faults.iter().sum::<u64>(), tracked.tracking_faults);
    assert!(
        faults.iter().all(|&f| f > 0),
        "both nodes fault in parallel"
    );
}

#[test]
fn tracing_records_protocol_event_sequence() {
    use acorr_dsm::trace::Event;
    // t0 writes page 0; t1 (remote) reads it next iteration.
    let p = Scripted::new(
        1,
        vec![vec![
            vec![Op::write(0, 64), Op::Barrier],
            vec![Op::Barrier, Op::read(0, 64)],
        ]],
    );
    let mut dsm = dsm_for(2, p);
    dsm.enable_tracing(1024);
    dsm.run_iterations(1).unwrap();
    let trace = dsm.take_trace().unwrap();
    assert!(trace.dropped() == 0);
    let events: Vec<&Event> = trace.iter().map(|(_, e)| e).collect();
    // The write fault (twin) precedes its diff, which precedes the reader's
    // remote miss.
    let twin_pos = events
        .iter()
        .position(|e| matches!(e, Event::WriteFault { .. }))
        .expect("twin event");
    let diff_pos = events
        .iter()
        .position(|e| matches!(e, Event::DiffCreated { .. }))
        .expect("diff event");
    let miss_pos = events
        .iter()
        .position(|e| matches!(e, Event::RemoteMiss { thread: 1, .. }))
        .expect("miss event");
    assert!(twin_pos < diff_pos, "{events:?}");
    assert!(diff_pos < miss_pos, "{events:?}");
    assert!(
        events
            .iter()
            .filter(|e| matches!(e, Event::BarrierRelease { .. }))
            .count()
            >= 2
    );
    // Timestamps are non-decreasing per node ordering at barriers.
    let render = trace.render();
    assert!(render.contains("barrier"));
}

#[test]
fn tracing_is_off_by_default_and_bounded_when_on() {
    let p = Scripted::new(1, vec![vec![vec![Op::write(0, 8)], vec![Op::read(0, 8)]]]);
    let mut dsm = dsm_for(2, p);
    assert!(dsm.take_trace().is_none(), "off by default");
    dsm.enable_tracing(2);
    dsm.run_iterations(3).unwrap();
    let trace = dsm.take_trace().unwrap();
    assert_eq!(trace.len(), 2);
    assert!(trace.dropped() > 0);
}

#[test]
fn tracing_sees_migrations_and_tracked_faults() {
    use acorr_dsm::trace::Event;
    let p = Scripted::new(2, vec![vec![vec![Op::read(0, 8)], vec![Op::read(PAGE, 8)]]]);
    let cluster = ClusterConfig::new(2, 2).unwrap();
    let mut dsm = Dsm::new(DsmConfig::new(cluster), p, Mapping::stretch(&cluster)).unwrap();
    dsm.enable_tracing(4096);
    dsm.run_tracked_iteration().unwrap();
    let swapped = Mapping::from_assignment(&cluster, vec![NodeId(1), NodeId(0)]).unwrap();
    dsm.migrate_to(swapped).unwrap();
    let trace = dsm.take_trace().unwrap();
    assert!(trace
        .iter()
        .any(|(_, e)| matches!(e, Event::CorrelationFault { .. })));
    assert_eq!(
        trace
            .iter()
            .filter(|(_, e)| matches!(e, Event::Migration { .. }))
            .count(),
        2
    );
}

#[test]
fn stall_accounting_shows_latency_hiding() {
    // Two sibling threads cold-miss different pages: their stalls overlap,
    // so total stall exceeds the miss-attributable share of elapsed time.
    let p = Scripted::new(
        4,
        vec![vec![
            vec![],
            vec![],
            vec![Op::read(2 * PAGE, 64)],
            vec![Op::read(3 * PAGE, 64)],
        ]],
    );
    let cluster = ClusterConfig::new(2, 4).unwrap();
    let mut dsm = Dsm::new(DsmConfig::new(cluster), p, Mapping::stretch(&cluster)).unwrap();
    let stats = dsm.run_iterations(1).unwrap();
    let per_fetch = acorr_sim::NetworkModel::default().transfer_time(PAGE);
    assert_eq!(stats.stall, per_fetch * 2, "both fetch stalls recorded");
    // The serialized variant (one thread does both fetches) has the same
    // total stall but a longer elapsed time: the overlap is visible as the
    // gap between the two.
    let serial = Scripted::new(
        4,
        vec![vec![
            vec![],
            vec![],
            vec![Op::read(2 * PAGE, 64), Op::read(3 * PAGE, 64)],
            vec![],
        ]],
    );
    let cluster = ClusterConfig::new(2, 4).unwrap();
    let mut serial_dsm =
        Dsm::new(DsmConfig::new(cluster), serial, Mapping::stretch(&cluster)).unwrap();
    let serial_stats = serial_dsm.run_iterations(1).unwrap();
    assert_eq!(serial_stats.stall, stats.stall, "same total stall");
    assert!(
        serial_stats.elapsed > stats.elapsed,
        "overlap: {} vs {}",
        stats.elapsed,
        serial_stats.elapsed
    );
}
