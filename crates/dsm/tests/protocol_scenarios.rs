//! Protocol corner cases across three and four nodes: diff chains,
//! GC/migration interplay, lock queue behaviour, and cross-protocol
//! interactions that the basic engine tests don't reach.

use acorr_dsm::{Dsm, DsmConfig, DsmError, LockId, Op, Program, WriteMode};
use acorr_mem::PAGE_SIZE;
use acorr_sim::{ClusterConfig, Mapping, MessageKind, NodeId, SimDuration};

struct Scripted {
    shared_pages: u64,
    locks: usize,
    scripts: Vec<Vec<Op>>,
}

impl Scripted {
    fn new(shared_pages: u64, scripts: Vec<Vec<Op>>) -> Self {
        Scripted {
            shared_pages,
            locks: 0,
            scripts,
        }
    }
    fn with_locks(mut self, locks: usize) -> Self {
        self.locks = locks;
        self
    }
}

impl Program for Scripted {
    fn name(&self) -> &str {
        "scenario"
    }
    fn shared_bytes(&self) -> u64 {
        self.shared_pages * PAGE_SIZE as u64
    }
    fn num_threads(&self) -> usize {
        self.scripts.len()
    }
    fn num_locks(&self) -> usize {
        self.locks
    }
    fn script(&self, thread: usize, _iteration: usize) -> Vec<Op> {
        self.scripts[thread].clone()
    }
}

fn dsm_on(nodes: usize, program: Scripted) -> Dsm<Scripted> {
    let cluster = ClusterConfig::new(nodes, program.num_threads()).unwrap();
    Dsm::new(DsmConfig::new(cluster), program, Mapping::stretch(&cluster)).unwrap()
}

const PAGE: u64 = PAGE_SIZE as u64;

#[test]
fn three_writer_diff_chain_accumulates() {
    // Three nodes write disjoint ranges of one page each iteration; a
    // fourth only reads. The reader's steady-state fetch applies exactly
    // three diffs per iteration.
    let p = Scripted::new(
        1,
        vec![
            vec![Op::read(0, PAGE), Op::write(0, 100)],
            vec![Op::read(0, PAGE), Op::write(1000, 100)],
            vec![Op::read(0, PAGE), Op::write(2000, 100)],
            vec![Op::read(0, PAGE)],
        ],
    );
    let mut dsm = dsm_on(4, p);
    dsm.run_iterations(2).unwrap();
    let steady = dsm.run_iterations(1).unwrap();
    // Everyone is invalid each iteration (3 concurrent writers): 4 misses.
    assert_eq!(steady.remote_misses, 4);
    // Reader fetches 3 foreign diffs; each writer fetches the other 2.
    assert_eq!(
        steady.net.messages(MessageKind::DiffFetch),
        3 + 3 * 2,
        "{steady}"
    );
    assert_eq!(steady.diffs_created, 3);
}

#[test]
fn reader_that_skips_an_interval_catches_up_on_all_diffs() {
    // Writer updates its page every iteration; the reader only reads in
    // iterations where a flag page says so... simplest: reader reads once
    // after several write-only iterations and must apply the accumulated
    // diff chain in one fetch.
    let writer_only = Scripted::new(1, vec![vec![Op::write(0, 64)], vec![]]);
    let mut dsm = dsm_on(2, writer_only);
    dsm.run_iterations(1).unwrap();
    // Reader faults in iteration 2 after one warm write; make it read by
    // swapping scripts is impossible — instead check the directory math via
    // a fresh reader: run 3 more write iterations, then measure a read.
    dsm.run_iterations(3).unwrap();
    // Now let the reader touch the page by migrating it... simpler: build a
    // second program where the reader reads every 5th iteration is beyond
    // Scripted; use the fetch accounting instead: a brand-new instance
    // whose reader reads only in the measured iteration.
    let p = Scripted::new(1, vec![vec![Op::write(0, 64)], vec![Op::read(0, 8)]]);
    let mut dsm = dsm_on(2, p);
    let first = dsm.run_iterations(1).unwrap();
    assert_eq!(first.net.messages(MessageKind::PageFetch), 1, "cold");
    let steady = dsm.run_iterations(1).unwrap();
    // One diff per iteration: the reader applies exactly one.
    assert_eq!(steady.net.messages(MessageKind::DiffFetch), 1);
    assert_eq!(
        steady.net.bytes(MessageKind::DiffFetch),
        64 + 8 + 16,
        "diff framing"
    );
}

#[test]
fn migration_after_gc_forces_full_page_fetches() {
    // GC consolidates at the writer; then the reader thread migrates to a
    // third node that has no copy at all: its next read is a full-page
    // fetch from the consolidated owner.
    let p = Scripted::new(
        1,
        vec![
            vec![Op::write(0, 256)],
            vec![Op::read(0, 8)],
            vec![Op::compute(1000)],
        ],
    );
    let cluster = ClusterConfig::new(3, 3).unwrap();
    let config = DsmConfig::new(cluster).with_gc_threshold(1);
    let mut dsm = Dsm::new(config, p, Mapping::stretch(&cluster)).unwrap();
    let start = dsm.run_iterations(3).unwrap();
    assert!(start.gc_runs > 0, "gc must have fired");
    // Move the reader (thread 1) to node 2.
    let remapped =
        Mapping::from_assignment(&cluster, vec![NodeId(0), NodeId(2), NodeId(1)]).unwrap();
    dsm.migrate_to(remapped).unwrap();
    let after = dsm.run_iterations(1).unwrap();
    assert!(
        after.net.messages(MessageKind::PageFetch) >= 1,
        "cold full-page fetch at the new home: {after}"
    );
}

#[test]
fn lock_queue_is_fifo_and_time_consistent() {
    // Four threads on four nodes contend for one lock; each holds it for
    // 1 ms of compute. Total time must reflect full serialization and every
    // grant after the first is remote.
    let l = LockId(0);
    let cs = vec![Op::Lock(l), Op::compute(1_000_000), Op::Unlock(l)];
    let p = Scripted::new(1, vec![cs.clone(), cs.clone(), cs.clone(), cs]).with_locks(1);
    let mut dsm = dsm_on(4, p);
    let stats = dsm.run_iterations(1).unwrap();
    assert_eq!(stats.lock_acquires, 4);
    assert_eq!(stats.remote_lock_acquires, 3);
    assert!(stats.elapsed >= SimDuration::from_millis(4));
    assert!(
        stats.elapsed < SimDuration::from_millis(6),
        "serialization, not explosion: {}",
        stats.elapsed
    );
}

#[test]
fn unlock_handoff_carries_critical_section_updates() {
    // Chain of three threads on three nodes incrementing one counter under
    // a lock in one barrier interval: each acquirer must see (fetch) the
    // previous holder's update.
    let l = LockId(0);
    let cs = |_: usize| vec![Op::Lock(l), Op::read(0, 8), Op::write(0, 8), Op::Unlock(l)];
    let p = Scripted::new(1, vec![cs(0), cs(1), cs(2)]).with_locks(1);
    let mut dsm = dsm_on(3, p);
    let first = dsm.run_iterations(1).unwrap();
    // Two handoffs after the first local acquisition; each later acquirer
    // misses on the counter page (eager release finalization).
    assert!(first.remote_misses >= 2, "{first}");
    assert!(first.diffs_created >= 2, "one per release with writes");
}

#[test]
fn tracked_iteration_counts_match_across_node_counts() {
    // §4.2: tracking cost is incurred locally and in parallel — the total
    // fault count is a property of the program, not the cluster size.
    let scripts: Vec<Vec<Op>> = (0..8)
        .map(|t| vec![Op::read((t as u64 % 4) * PAGE, 64)])
        .collect();
    let total_faults = |nodes: usize| {
        let p = Scripted::new(4, scripts.clone());
        let cluster = ClusterConfig::new(nodes, 8).unwrap();
        let mut dsm = Dsm::new(DsmConfig::new(cluster), p, Mapping::stretch(&cluster)).unwrap();
        let (stats, _) = dsm.run_tracked_iteration().unwrap();
        stats.tracking_faults
    };
    assert_eq!(total_faults(2), total_faults(4));
    assert_eq!(total_faults(2), total_faults(8));
}

#[test]
fn passive_and_active_tracking_can_run_back_to_back() {
    let p = Scripted::new(2, vec![vec![Op::read(PAGE, 64)], vec![Op::read(0, 64)]]);
    let mut dsm = dsm_on(2, p);
    dsm.enable_passive_tracking();
    let (_, active) = dsm.run_tracked_iteration().unwrap();
    let passive = dsm.take_passive_observations().unwrap();
    // Passive sees at most what active sees.
    for t in 0..2 {
        for page in passive.bitmap(t).iter_ones() {
            assert!(active.bitmap(t).contains(page), "t{t} p{page}");
        }
    }
    assert!(passive.total_observations() <= active.total_observations());
}

#[test]
fn single_writer_reader_migration_keeps_running() {
    // Under the single-writer protocol, migrate the reader mid-run; the
    // protocol must keep ownership consistent.
    let p = Scripted::new(
        1,
        vec![
            vec![Op::write(0, 64), Op::Barrier],
            vec![Op::Barrier, Op::read(0, 64)],
            vec![Op::compute(100), Op::Barrier],
        ],
    );
    let cluster = ClusterConfig::new(3, 3).unwrap();
    let config = DsmConfig::new(cluster).with_write_mode(WriteMode::SingleWriter {
        delta: SimDuration::from_micros(50),
    });
    let mut dsm = Dsm::new(config, p, Mapping::stretch(&cluster)).unwrap();
    dsm.run_iterations(2).unwrap();
    let remapped =
        Mapping::from_assignment(&cluster, vec![NodeId(0), NodeId(2), NodeId(1)]).unwrap();
    dsm.migrate_to(remapped).unwrap();
    let after = dsm.run_iterations(2).unwrap();
    assert!(after.remote_misses >= 1);
    assert_eq!(after.diffs_created, 0, "single-writer never diffs");
}

#[test]
fn writes_spanning_pages_create_one_diff_per_page() {
    let p = Scripted::new(3, vec![vec![Op::write(PAGE - 100, 200 + PAGE)], vec![]]);
    let mut dsm = dsm_on(2, p);
    let stats = dsm.run_iterations(1).unwrap();
    // The write straddles pages 0, 1 and 2: three twins, three diffs.
    assert_eq!(stats.twin_faults, 3);
    assert_eq!(stats.diffs_created, 3);
}

#[test]
fn empty_iterations_cost_only_barriers() {
    let p = Scripted::new(1, vec![vec![], vec![], vec![]]);
    let mut dsm = dsm_on(3, p);
    let stats = dsm.run_iterations(5).unwrap();
    assert_eq!(stats.remote_misses, 0);
    assert_eq!(stats.diffs_created, 0);
    assert_eq!(stats.barriers, 5);
    assert!(stats.elapsed < SimDuration::from_millis(5));
}

#[test]
fn node_zero_threads_never_cold_miss() {
    // All pages start at node 0: a single-node run has zero misses ever.
    let scripts: Vec<Vec<Op>> = (0..4)
        .map(|t| {
            vec![
                Op::read(t as u64 * PAGE, PAGE),
                Op::write(t as u64 * PAGE, 64),
            ]
        })
        .collect();
    let p = Scripted::new(4, scripts);
    let cluster = ClusterConfig::new(1, 4).unwrap();
    let mut dsm = Dsm::new(DsmConfig::new(cluster), p, Mapping::stretch(&cluster)).unwrap();
    let stats = dsm.run_iterations(3).unwrap();
    assert_eq!(stats.remote_misses, 0);
    assert_eq!(
        stats.net.data_bytes(),
        stats.net.bytes(MessageKind::WriteNotice)
    );
}

#[test]
fn deadlock_error_is_contained_to_the_iteration() {
    // After a deadlock error, the engine state is not poisoned for
    // inspection purposes (mapping/stats still readable).
    let a = LockId(0);
    let b = LockId(1);
    let p = Scripted::new(
        4,
        vec![
            vec![],
            vec![
                Op::Lock(a),
                Op::read(2 * PAGE, 8),
                Op::Lock(b),
                Op::Unlock(b),
                Op::Unlock(a),
            ],
            vec![
                Op::Lock(b),
                Op::read(3 * PAGE, 8),
                Op::Lock(a),
                Op::Unlock(a),
                Op::Unlock(b),
            ],
        ],
    )
    .with_locks(2);
    let cluster = ClusterConfig::new(3, 3).unwrap();
    let mut dsm = Dsm::new(DsmConfig::new(cluster), p, Mapping::stretch(&cluster)).unwrap();
    assert_eq!(
        dsm.run_iterations(1),
        Err(DsmError::Deadlock { iteration: 0 })
    );
    assert_eq!(dsm.mapping().num_threads(), 3);
    let _ = dsm.total_stats();
}
