//! Integration tests for deterministic fault injection and the coherence
//! conformance oracle, exercised through small hand-built programs.
//!
//! These run under default features (no proptest needed): fault plans are
//! themselves deterministic, so fixed seeds give full reproducibility.

use acorr_dsm::{Dsm, DsmConfig, IterStats, LockId, Op, Program, WriteMode};
use acorr_mem::PAGE_SIZE;
use acorr_sim::{ClusterConfig, FaultPlan, Mapping, SimDuration};

/// A program built from explicit per-thread, per-iteration scripts.
struct Scripted {
    shared_bytes: u64,
    locks: usize,
    /// scripts[iteration][thread]
    scripts: Vec<Vec<Vec<Op>>>,
}

impl Scripted {
    fn new(shared_pages: u64, scripts: Vec<Vec<Vec<Op>>>) -> Self {
        Scripted {
            shared_bytes: shared_pages * PAGE_SIZE as u64,
            locks: 0,
            scripts,
        }
    }

    fn with_locks(mut self, locks: usize) -> Self {
        self.locks = locks;
        self
    }
}

impl Program for Scripted {
    fn name(&self) -> &str {
        "scripted"
    }
    fn shared_bytes(&self) -> u64 {
        self.shared_bytes
    }
    fn num_threads(&self) -> usize {
        self.scripts[0].len()
    }
    fn num_locks(&self) -> usize {
        self.locks
    }
    fn script(&self, thread: usize, iteration: usize) -> Vec<Op> {
        let it = iteration.min(self.scripts.len() - 1);
        self.scripts[it][thread].clone()
    }
}

const PAGE: u64 = PAGE_SIZE as u64;

/// A sharing-heavy workload: concurrent writers on one page, private pages,
/// a lock-protected counter, cross-iteration reads.
fn busy_program() -> Scripted {
    let l = LockId(0);
    Scripted::new(
        6,
        vec![vec![
            vec![
                Op::read(0, PAGE),
                Op::write(0, 128),
                Op::Lock(l),
                Op::read(4 * PAGE, 16),
                Op::write(4 * PAGE, 16),
                Op::Unlock(l),
                Op::Barrier,
                Op::read(PAGE, 64),
            ],
            vec![
                Op::read(0, PAGE),
                Op::write(2048, 128),
                Op::write(PAGE, 64),
                Op::Lock(l),
                Op::read(4 * PAGE, 16),
                Op::write(4 * PAGE, 16),
                Op::Unlock(l),
                Op::Barrier,
            ],
            vec![
                Op::read(2 * PAGE, PAGE),
                Op::write(2 * PAGE + 512, 256),
                Op::Barrier,
                Op::read(0, 256),
            ],
            vec![
                Op::read(3 * PAGE, 64),
                Op::write(3 * PAGE, 64),
                Op::Barrier,
                Op::read(2 * PAGE + 512, 64),
            ],
        ]],
    )
    .with_locks(1)
}

/// A lock-free variant: concurrent writers and cross-iteration reads only.
/// Without locks there is no timing-dependent ordering, so every protocol
/// counter is invariant under fault plans (only timing and retransmissions
/// move).
fn barrier_program() -> Scripted {
    Scripted::new(
        5,
        vec![vec![
            vec![
                Op::read(0, PAGE),
                Op::write(0, 128),
                Op::Barrier,
                Op::read(PAGE, 64),
            ],
            vec![
                Op::read(0, PAGE),
                Op::write(2048, 128),
                Op::write(PAGE, 64),
                Op::Barrier,
            ],
            vec![
                Op::read(2 * PAGE, PAGE),
                Op::write(2 * PAGE + 512, 256),
                Op::Barrier,
            ],
            vec![
                Op::write(3 * PAGE, 64),
                Op::Barrier,
                Op::read(2 * PAGE + 512, 64),
            ],
        ]],
    )
}

fn dsm_with(config: DsmConfig, program: Scripted) -> Dsm<Scripted> {
    let mapping = Mapping::stretch(&config.cluster);
    Dsm::new(config, program, mapping).unwrap()
}

fn run_with_plan(plan: FaultPlan, iterations: usize) -> (IterStats, u64) {
    let cluster = ClusterConfig::new(2, 4).unwrap();
    let config = DsmConfig::new(cluster)
        .with_gc_threshold(8)
        .with_faults(plan);
    let mut dsm = dsm_with(config, busy_program());
    dsm.enable_oracle();
    let stats = dsm.run_iterations(iterations).unwrap();
    let report = dsm.oracle_report().unwrap();
    assert_eq!(report.violations, 0, "oracle must stay clean");
    assert!(report.barriers_checked >= iterations as u64);
    (stats, report.bytes_compared)
}

// ---------------------------------------------------------------------
// Determinism and zero-fault identity
// ---------------------------------------------------------------------

#[test]
fn zero_fault_plan_is_byte_identical_to_no_plan() {
    let cluster = ClusterConfig::new(2, 4).unwrap();
    let base = {
        let mut dsm = dsm_with(DsmConfig::new(cluster).with_gc_threshold(8), busy_program());
        dsm.run_iterations(4).unwrap()
    };
    let with_none = {
        let config = DsmConfig::new(cluster)
            .with_gc_threshold(8)
            .with_faults(FaultPlan::none());
        let mut dsm = dsm_with(config, busy_program());
        dsm.run_iterations(4).unwrap()
    };
    assert_eq!(base, with_none);
    assert_eq!(with_none.retries, 0);
    assert_eq!(with_none.net.total_retrans_messages(), 0);
}

#[test]
fn oracle_is_a_pure_observer() {
    // Enabling the oracle must not perturb any statistic.
    let cluster = ClusterConfig::new(2, 4).unwrap();
    let run = |oracle: bool| {
        let config = DsmConfig::new(cluster)
            .with_gc_threshold(8)
            .with_faults(FaultPlan::moderate(11));
        let mut dsm = dsm_with(config, busy_program());
        if oracle {
            dsm.enable_oracle();
        }
        dsm.run_iterations(4).unwrap()
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn same_seed_and_plan_reproduce_bytes_and_retries() {
    let a = run_with_plan(FaultPlan::heavy(42), 5);
    let b = run_with_plan(FaultPlan::heavy(42), 5);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}

#[test]
fn different_seeds_decorrelate_outcomes() {
    let run = |seed| {
        let cluster = ClusterConfig::new(2, 4).unwrap();
        let config = DsmConfig::new(cluster).with_faults(FaultPlan::heavy(seed));
        let mut dsm = dsm_with(config, barrier_program());
        dsm.run_iterations(5).unwrap()
    };
    let (a, b) = (run(1), run(2));
    // Same lock-free program, same counters for protocol events...
    assert_eq!(a.remote_misses, b.remote_misses);
    assert_eq!(a.diffs_created, b.diffs_created);
    // ...but the perturbed timing differs.
    assert_ne!(a.elapsed, b.elapsed);
}

// ---------------------------------------------------------------------
// Fault-plan behaviour
// ---------------------------------------------------------------------

#[test]
fn faults_slow_the_run_monotonically_in_intensity() {
    let (none, _) = run_with_plan(FaultPlan::none(), 4);
    let (light, _) = run_with_plan(FaultPlan::light(7), 4);
    let (heavy, _) = run_with_plan(FaultPlan::heavy(7), 4);
    assert!(
        light.elapsed >= none.elapsed,
        "{} < {}",
        light.elapsed,
        none.elapsed
    );
    assert!(
        heavy.elapsed > none.elapsed,
        "{} <= {}",
        heavy.elapsed,
        none.elapsed
    );
}

#[test]
fn heavy_plan_forces_retransmissions() {
    // Lock-free program: every protocol counter is plan-invariant, so the
    // first-send ledgers must match the clean run exactly while the
    // retransmission ledgers fill up.
    let run = |plan| {
        let cluster = ClusterConfig::new(2, 4).unwrap();
        let mut dsm = dsm_with(DsmConfig::new(cluster).with_faults(plan), barrier_program());
        dsm.run_iterations(6).unwrap()
    };
    let stats = run(FaultPlan::heavy(3));
    assert!(
        stats.retries > 0,
        "drop probability 8% must trip over 6 iters"
    );
    assert!(stats.net.total_retrans_messages() > 0);
    assert!(stats.net.total_retrans_bytes() > 0);
    let clean = run(FaultPlan::none());
    assert_eq!(stats.net.total_messages(), clean.net.total_messages());
    assert_eq!(stats.net.total_bytes(), clean.net.total_bytes());
    assert_eq!(stats.remote_misses, clean.remote_misses);
}

#[test]
fn every_fault_intensity_terminates_and_stays_oracle_clean() {
    for plan in [
        FaultPlan::none(),
        FaultPlan::light(5),
        FaultPlan::moderate(5),
        FaultPlan::heavy(5),
    ] {
        let (stats, bytes) = run_with_plan(plan, 4);
        assert!(stats.barriers >= 4);
        assert!(bytes > 0, "oracle compared page contents");
    }
}

// ---------------------------------------------------------------------
// Oracle coverage across protocol features
// ---------------------------------------------------------------------

#[test]
fn oracle_clean_under_gc_pressure() {
    let cluster = ClusterConfig::new(2, 4).unwrap();
    let config = DsmConfig::new(cluster)
        .with_gc_threshold(1) // GC at every barrier
        .with_faults(FaultPlan::moderate(9));
    let mut dsm = dsm_with(config, busy_program());
    dsm.enable_oracle();
    let stats = dsm.run_iterations(5).unwrap();
    assert!(stats.gc_runs >= 1, "threshold 1 must trip");
    assert_eq!(dsm.oracle_report().unwrap().violations, 0);
}

#[test]
fn oracle_clean_under_single_writer_protocol() {
    let cluster = ClusterConfig::new(2, 4).unwrap();
    let config = DsmConfig::new(cluster)
        .with_write_mode(WriteMode::SingleWriter {
            delta: SimDuration::from_micros(100),
        })
        .with_faults(FaultPlan::moderate(13));
    let mut dsm = dsm_with(config, busy_program());
    dsm.enable_oracle();
    let stats = dsm.run_iterations(4).unwrap();
    assert!(stats.ownership_transfers > 0, "writers must ping-pong");
    let report = dsm.oracle_report().unwrap();
    assert_eq!(report.violations, 0, "{:?}", dsm.oracle_report());
    assert!(report.barriers_checked >= 4);
}

#[test]
fn oracle_clean_during_tracked_iterations_and_migration() {
    let cluster = ClusterConfig::new(2, 4).unwrap();
    let config = DsmConfig::new(cluster)
        .with_gc_threshold(8)
        .with_faults(FaultPlan::light(21));
    let mut dsm = dsm_with(config, busy_program());
    dsm.enable_oracle();
    dsm.run_iterations(2).unwrap();
    dsm.run_tracked_iteration().unwrap();
    dsm.swap_threads(0, 2).unwrap();
    dsm.run_iterations(2).unwrap();
    assert_eq!(dsm.oracle_report().unwrap().violations, 0);
    assert!(dsm.total_stats().migrations > 0);
}

#[test]
fn oracle_checks_lock_releases() {
    let l = LockId(0);
    let script = |_: usize| vec![Op::Lock(l), Op::read(0, 8), Op::write(0, 8), Op::Unlock(l)];
    let p = Scripted::new(1, vec![vec![script(0), script(1)]]).with_locks(1);
    let cluster = ClusterConfig::new(2, 2).unwrap();
    let mut dsm = dsm_with(DsmConfig::new(cluster), p);
    dsm.enable_oracle();
    dsm.run_iterations(2).unwrap();
    let report = dsm.oracle_report().unwrap();
    assert!(report.lock_releases_checked >= 4);
    assert_eq!(report.violations, 0);
}

// ---------------------------------------------------------------------
// Crash/partition fault classes (PR-7)
// ---------------------------------------------------------------------

/// Partition ∘ heal is an identity on the delivered-message multiset:
/// cross-cut messages are buffered until the cut heals, never lost, so the
/// paper-reproduction counters (misses, first-send bytes) of a lock-free
/// program cannot move. Checked across seeds, and the property must not be
/// vacuous: some seed has to actually partition.
#[test]
fn partition_and_heal_preserve_delivered_message_multiset() {
    let clean = {
        let cluster = ClusterConfig::new(2, 4).unwrap();
        let mut dsm = dsm_with(DsmConfig::new(cluster), barrier_program());
        dsm.run_iterations(6).unwrap()
    };
    let mut partitions_seen = 0u64;
    for seed in 0..8 {
        let cluster = ClusterConfig::new(2, 4).unwrap();
        let config = DsmConfig::new(cluster).with_faults(FaultPlan::partition(seed));
        let mut dsm = dsm_with(config, barrier_program());
        dsm.enable_oracle();
        let stats = dsm.run_iterations(6).unwrap();
        assert_eq!(dsm.oracle_report().unwrap().violations, 0, "seed {seed}");
        assert_eq!(stats.remote_misses, clean.remote_misses, "seed {seed}");
        assert_eq!(
            stats.net.total_bytes(),
            clean.net.total_bytes(),
            "seed {seed}: partition must only delay, never drop or resend"
        );
        assert_eq!(stats.crashes, 0);
        partitions_seen += stats.partition_delays;
    }
    assert!(
        partitions_seen > 0,
        "at least one seed must cut the network, or the property is vacuous"
    );
}

/// Duplicated deliveries and checksum-caught corruptions are absorbed by
/// the protocol (idempotent receive, retransmission) without inflating any
/// paper counter: their traffic lands in the retransmission ledger only.
#[test]
fn duplication_and_corruption_never_inflate_paper_counters() {
    let clean = {
        let cluster = ClusterConfig::new(2, 4).unwrap();
        let mut dsm = dsm_with(DsmConfig::new(cluster), barrier_program());
        dsm.run_iterations(4).unwrap()
    };
    for seed in [3, 17, 99] {
        let plan = FaultPlan {
            seed,
            dup_prob: 0.4,
            corrupt_prob: 0.2,
            ..FaultPlan::none()
        };
        let cluster = ClusterConfig::new(2, 4).unwrap();
        let mut dsm = dsm_with(DsmConfig::new(cluster).with_faults(plan), barrier_program());
        dsm.enable_oracle();
        let stats = dsm.run_iterations(4).unwrap();
        assert_eq!(dsm.oracle_report().unwrap().violations, 0, "seed {seed}");
        assert!(
            stats.dup_messages > 0,
            "seed {seed}: dup_prob 0.4 must fire"
        );
        assert!(stats.corrupt_detected > 0, "seed {seed}");
        assert_eq!(stats.remote_misses, clean.remote_misses, "seed {seed}");
        assert_eq!(
            stats.net.total_bytes(),
            clean.net.total_bytes(),
            "seed {seed}: dup/corrupt traffic must stay in the retrans ledger"
        );
        assert!(
            stats.net.total_retrans_messages() >= stats.dup_messages + stats.corrupt_detected,
            "seed {seed}"
        );
        assert!(
            stats.net.total_retrans_bytes() >= stats.dup_bytes,
            "seed {seed}"
        );
    }
}

/// A node crash at a barrier wipes its cached pages; recovery is purely
/// protocol-level — valid copies are re-fetched from the surviving
/// directory on the next miss — and the oracle certifies every barrier
/// after the wipe. `crash_prob=1` crashes at every interval.
#[test]
fn crash_and_recovery_reach_an_oracle_clean_state() {
    let plan = FaultPlan {
        seed: 7,
        crash_prob: 1.0,
        ..FaultPlan::none()
    };
    let (stats, bytes) = run_with_plan(plan.clone(), 5);
    assert!(stats.crashes > 0, "crash_prob 1.0 must crash");
    assert!(stats.pages_wiped > 0, "a crash must wipe cached copies");
    assert!(bytes > 0, "the oracle compared post-recovery contents");

    // Single-writer: the survivor adopts the victim's owned pages.
    let cluster = ClusterConfig::new(2, 4).unwrap();
    let config = DsmConfig::new(cluster)
        .with_write_mode(WriteMode::SingleWriter {
            delta: SimDuration::from_micros(100),
        })
        .with_faults(plan);
    let mut dsm = dsm_with(config, busy_program());
    dsm.enable_oracle();
    let stats = dsm.run_iterations(4).unwrap();
    assert!(stats.crashes > 0);
    assert_eq!(dsm.oracle_report().unwrap().violations, 0);
}

/// Crashes are the one fault class allowed to move protocol counters
/// (wiped caches re-fetch), but determinism still holds: same seed, same
/// wipes, same recovery, byte for byte.
#[test]
fn crash_runs_are_deterministic_per_seed() {
    let plan = FaultPlan {
        seed: 21,
        crash_prob: 0.5,
        ..FaultPlan::none()
    };
    let a = run_with_plan(plan.clone(), 5);
    let b = run_with_plan(plan, 5);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert!(
        a.0.crashes > 0,
        "crash_prob 0.5 over 5 iterations must fire"
    );
}
