//! Property-based engine tests: random well-formed programs (barrier
//! aligned, lock balanced, ascending lock nesting) must run deadlock-free,
//! deterministically, and uphold the protocol invariants.

// Property tests require the external `proptest` crate, which the
// offline default build cannot fetch; see the crate Cargo.toml.
#![cfg(feature = "proptest")]

use acorr_dsm::{Dsm, DsmConfig, LockId, Op, Program, WriteMode};
use acorr_mem::PAGE_SIZE;
use acorr_sim::{ClusterConfig, FaultPlan, Mapping, SimDuration};
use proptest::prelude::*;

const PAGES: u64 = 8;
const LOCKS: usize = 3;

/// One generated atom of work.
#[derive(Debug, Clone)]
enum Atom {
    Read {
        page: u64,
        off: u64,
        len: u64,
    },
    Write {
        page: u64,
        off: u64,
        len: u64,
    },
    Compute(u64),
    /// A critical section over `lock`, containing simple accesses.
    Locked {
        lock: usize,
        body: Vec<(bool, u64)>,
    },
}

#[derive(Debug, Clone)]
struct GenProgram {
    threads: usize,
    /// segments[segment][thread] = atoms
    segments: Vec<Vec<Vec<Atom>>>,
}

impl Program for GenProgram {
    fn name(&self) -> &str {
        "generated"
    }
    fn shared_bytes(&self) -> u64 {
        PAGES * PAGE_SIZE as u64
    }
    fn num_threads(&self) -> usize {
        self.threads
    }
    fn num_locks(&self) -> usize {
        LOCKS
    }
    fn script(&self, thread: usize, _iteration: usize) -> Vec<Op> {
        let mut ops = Vec::new();
        for (s, segment) in self.segments.iter().enumerate() {
            for atom in &segment[thread] {
                match *atom {
                    Atom::Read { page, off, len } => {
                        ops.push(Op::read(page * PAGE_SIZE as u64 + off, len));
                    }
                    Atom::Write { page, off, len } => {
                        ops.push(Op::write(page * PAGE_SIZE as u64 + off, len));
                    }
                    Atom::Compute(ns) => ops.push(Op::compute(ns)),
                    Atom::Locked { lock, ref body } => {
                        ops.push(Op::Lock(LockId(lock as u16)));
                        for &(is_write, page) in body {
                            let addr = page * PAGE_SIZE as u64;
                            if is_write {
                                ops.push(Op::write(addr, 64));
                            } else {
                                ops.push(Op::read(addr, 64));
                            }
                        }
                        ops.push(Op::Unlock(LockId(lock as u16)));
                    }
                }
            }
            if s + 1 < self.segments.len() {
                ops.push(Op::Barrier);
            }
        }
        ops
    }
}

fn atom_strategy() -> impl Strategy<Value = Atom> {
    prop_oneof![
        (0..PAGES, 0u64..3000, 1u64..1024).prop_map(|(page, off, len)| Atom::Read {
            page,
            off,
            len: len.min(PAGE_SIZE as u64 - off)
        }),
        (0..PAGES, 0u64..3000, 1u64..1024).prop_map(|(page, off, len)| Atom::Write {
            page,
            off,
            len: len.min(PAGE_SIZE as u64 - off)
        }),
        (0u64..50_000).prop_map(Atom::Compute),
        (
            0..LOCKS,
            proptest::collection::vec((any::<bool>(), 0..PAGES), 1..4)
        )
            .prop_map(|(lock, body)| Atom::Locked { lock, body }),
    ]
}

fn program_strategy() -> impl Strategy<Value = GenProgram> {
    (2usize..=5, 1usize..=3).prop_flat_map(|(threads, segments)| {
        proptest::collection::vec(
            proptest::collection::vec(proptest::collection::vec(atom_strategy(), 0..6), threads),
            segments,
        )
        .prop_map(move |segments| GenProgram { threads, segments })
    })
}

/// An arbitrary (but bounded) deterministic fault plan: any mix of delay
/// jitter, transient drops with retry, reordering, and slowdown windows.
fn fault_plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(), // seed
        0.0f64..=0.4, // delay_prob
        0u64..=1000,  // max_delay (us)
        0.0f64..=0.1, // drop_prob
        1u32..=6,     // max_retries
        50u64..=1000, // retry_timeout (us)
        0.0f64..=0.2, // reorder_prob
        0u32..=5,     // reorder_depth
        0usize..=3,   // slow_every (0 = no slow nodes)
        1.0f64..=4.0, // slow_factor
    )
        .prop_map(|(seed, dp, md, drp, mr, rt, rp, rd, se, sf)| {
            let mut plan = FaultPlan::none();
            plan.seed = seed;
            plan.delay_prob = dp;
            plan.max_delay = SimDuration::from_micros(md);
            plan.drop_prob = drp;
            plan.max_retries = mr;
            plan.retry_timeout = SimDuration::from_micros(rt);
            plan.reorder_prob = rp;
            plan.reorder_depth = rd;
            plan.slow_every = se;
            plan.slow_period = SimDuration::from_millis(2);
            plan.slow_duty = 0.4;
            plan.slow_factor = sf;
            plan
        })
}

fn run(program: &GenProgram, nodes: usize, iterations: usize) -> acorr_dsm::IterStats {
    let cluster = ClusterConfig::new(nodes, program.threads).expect("cluster");
    let mut dsm = Dsm::new(
        DsmConfig::new(cluster),
        program.clone(),
        Mapping::stretch(&cluster),
    )
    .expect("dsm");
    dsm.run_iterations(iterations)
        .expect("generated programs never deadlock")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any well-formed program runs to completion (the lock discipline is
    /// a simple non-nested critical section, so no deadlock is possible)
    /// and produces identical statistics on a re-run.
    #[test]
    fn deterministic_and_deadlock_free(program in program_strategy()) {
        let a = run(&program, 2, 2);
        let b = run(&program, 2, 2);
        prop_assert_eq!(a, b);
    }

    /// Protocol invariants hold on arbitrary programs.
    #[test]
    fn protocol_invariants(program in program_strategy()) {
        let stats = run(&program, 2, 3);
        // Remote misses and coherence faults are the same events.
        prop_assert_eq!(stats.remote_misses, stats.coherence_faults);
        // Every twin is finalized into exactly one diff by the barrier.
        prop_assert_eq!(stats.twin_faults, stats.diffs_created);
        // Barrier count: (segments - 1) explicit + 1 implicit, per
        // iteration.
        let expected = program.segments.len() as u64 * 3;
        prop_assert_eq!(stats.barriers, expected);
        // Time moves forward.
        prop_assert!(stats.elapsed.as_nanos() > 0);
        // Diff payloads include framing, so bytes >= count * header.
        prop_assert!(stats.diff_bytes_created >= stats.diffs_created * 16);
    }

    /// The single-writer protocol terminates (no thrashing livelock thanks
    /// to completed-at-fetch semantics), is deterministic, and never
    /// creates diffs or garbage-collects.
    #[test]
    fn single_writer_invariants(program in program_strategy()) {
        let cluster = ClusterConfig::new(2, program.threads).expect("cluster");
        let build = |delta_us: u64| {
            Dsm::new(
                DsmConfig::new(cluster).with_write_mode(WriteMode::SingleWriter {
                    delta: SimDuration::from_micros(delta_us),
                }),
                program.clone(),
                Mapping::stretch(&cluster),
            )
            .expect("dsm")
        };
        let a = build(0).run_iterations(2).expect("terminates");
        let b = build(0).run_iterations(2).expect("terminates");
        prop_assert_eq!(a, b, "deterministic");
        prop_assert_eq!(a.diffs_created, 0);
        prop_assert_eq!(a.gc_runs, 0);
        prop_assert_eq!(a.remote_misses, a.coherence_faults);
        // A positive delta reshuffles timing (and with it the exact
        // interleaving, so event counts can wiggle by a few), but it must
        // still terminate and stay in the same regime.
        let frozen = build(500).run_iterations(2).expect("terminates");
        let close = |x: u64, y: u64| x.abs_diff(y) <= 4 + x.max(y) / 4;
        prop_assert!(
            close(frozen.remote_misses, a.remote_misses),
            "misses {} vs {}", frozen.remote_misses, a.remote_misses
        );
        prop_assert!(
            close(frozen.ownership_transfers, a.ownership_transfers),
            "transfers {} vs {}", frozen.ownership_transfers, a.ownership_transfers
        );
    }

    /// Active tracking observes exactly the pages the scripts touch: no
    /// page is missed, none is invented.
    #[test]
    fn tracking_is_exact(program in program_strategy()) {
        let cluster = ClusterConfig::new(2, program.threads).expect("cluster");
        let mut dsm = Dsm::new(
            DsmConfig::new(cluster),
            program.clone(),
            Mapping::stretch(&cluster),
        )
        .expect("dsm");
        let (_, access) = dsm.run_tracked_iteration().expect("tracked run");
        for t in 0..program.threads {
            let mut expected = std::collections::BTreeSet::new();
            for op in program.script(t, 0) {
                if let Op::Read { addr, len } | Op::Write { addr, len } = op {
                    if len > 0 {
                        for p in (addr / 4096)..=((addr + len - 1) / 4096) {
                            expected.insert(p as usize);
                        }
                    }
                }
            }
            let observed: std::collections::BTreeSet<usize> =
                access.bitmap(t).iter_ones().collect();
            prop_assert_eq!(&observed, &expected, "thread {}", t);
        }
    }

    /// Under any fault plan, on any node count, every run terminates, the
    /// coherence oracle certifies release-consistency conformance, and a
    /// re-run with the same (seed, plan) reproduces every statistic —
    /// network ledgers and retry counts included — byte-identically.
    #[test]
    fn faulty_runs_are_oracle_clean_and_deterministic(
        program in program_strategy(),
        plan in fault_plan_strategy(),
    ) {
        for nodes in [1usize, 2, 4] {
            if nodes > program.threads {
                continue;
            }
            let cluster = ClusterConfig::new(nodes, program.threads).expect("cluster");
            let build = || {
                let mut dsm = Dsm::new(
                    DsmConfig::new(cluster).with_faults(plan.clone()),
                    program.clone(),
                    Mapping::stretch(&cluster),
                )
                .expect("dsm");
                dsm.enable_oracle();
                dsm
            };
            let mut first = build();
            let a = first.run_iterations(2).expect("oracle-clean run");
            let report = first.oracle_report().expect("oracle enabled");
            prop_assert_eq!(report.violations, 0, "nodes {}", nodes);
            prop_assert!(report.barriers_checked >= 2);
            let b = build().run_iterations(2).expect("oracle-clean rerun");
            prop_assert_eq!(a, b, "nodes {}", nodes);
        }
    }

    /// A zero-fault plan is a strict identity: no statistic moves relative
    /// to the default configuration, and no retransmission is recorded.
    #[test]
    fn zero_fault_plan_is_an_identity(program in program_strategy()) {
        let baseline = run(&program, 2, 2);
        let cluster = ClusterConfig::new(2, program.threads).expect("cluster");
        let explicit = Dsm::new(
            DsmConfig::new(cluster).with_faults(FaultPlan::none()),
            program.clone(),
            Mapping::stretch(&cluster),
        )
        .expect("dsm")
        .run_iterations(2)
        .expect("clean run");
        prop_assert_eq!(baseline, explicit.clone());
        prop_assert_eq!(explicit.retries, 0);
        prop_assert_eq!(explicit.net.total_retrans_messages(), 0);
        prop_assert_eq!(explicit.net.total_retrans_bytes(), 0);
    }

    /// For barrier-only programs, statistics other than faults and timing
    /// are unperturbed by tracking: the mechanism is observation-only.
    ///
    /// (Lock-using programs are excluded deliberately: pinned scheduling
    /// reorders lock acquisitions across nodes, and §2 of the paper notes
    /// that such scheduling nondeterminism legitimately shifts remote-miss
    /// counts by a few faults.)
    #[test]
    fn tracking_preserves_coherence_behaviour(mut program in program_strategy()) {
        for segment in &mut program.segments {
            for atoms in segment.iter_mut() {
                for atom in atoms.iter_mut() {
                    if matches!(atom, Atom::Locked { .. }) {
                        *atom = Atom::Compute(1_000);
                    }
                }
            }
        }
        let cluster = ClusterConfig::new(2, program.threads).expect("cluster");
        let build = || {
            Dsm::new(
                DsmConfig::new(cluster),
                program.clone(),
                Mapping::stretch(&cluster),
            )
            .expect("dsm")
        };
        let mut plain = build();
        let off = plain.run_iterations(1).expect("plain run");
        let mut tracked = build();
        let (on, _) = tracked.run_tracked_iteration().expect("tracked run");
        prop_assert_eq!(off.remote_misses, on.remote_misses);
        prop_assert_eq!(off.diffs_created, on.diffs_created);
        prop_assert_eq!(off.diff_bytes_created, on.diff_bytes_created);
        prop_assert_eq!(off.lock_acquires, on.lock_acquires);
        // And the *next* iteration behaves identically on both instances.
        prop_assert_eq!(
            plain.run_iterations(1).expect("second"),
            tracked.run_iterations(1).expect("second")
        );
    }
}
