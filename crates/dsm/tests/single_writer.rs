//! The single-writer protocol mode (§6's Mirage-style comparison point):
//! ownership migration, reader downgrades, and the delta interval.

use acorr_dsm::{Dsm, DsmConfig, Op, Program, WriteMode};
use acorr_mem::PAGE_SIZE;
use acorr_sim::{ClusterConfig, Mapping, SimDuration};

struct Scripted {
    shared_pages: u64,
    scripts: Vec<Vec<Op>>,
}

impl Program for Scripted {
    fn name(&self) -> &str {
        "sw-scripted"
    }
    fn shared_bytes(&self) -> u64 {
        self.shared_pages * PAGE_SIZE as u64
    }
    fn num_threads(&self) -> usize {
        self.scripts.len()
    }
    fn script(&self, thread: usize, _iteration: usize) -> Vec<Op> {
        self.scripts[thread].clone()
    }
}

fn sw_dsm(scripts: Vec<Vec<Op>>, pages: u64, delta: SimDuration) -> Dsm<Scripted> {
    let threads = scripts.len();
    let cluster = ClusterConfig::new(threads.min(4), threads).unwrap();
    let config = DsmConfig::new(cluster).with_write_mode(WriteMode::SingleWriter { delta });
    Dsm::new(
        config,
        Scripted {
            shared_pages: pages,
            scripts,
        },
        Mapping::stretch(&cluster),
    )
    .unwrap()
}

const PAGE: u64 = PAGE_SIZE as u64;

#[test]
fn write_steals_ownership_and_invalidates() {
    // t0 (node 0, initial owner) and t1 (node 1) alternate writes to one
    // page across iterations: every t1 write steals ownership; every t0
    // write steals it back.
    let scripts = vec![
        vec![Op::write(0, 64), Op::Barrier],
        vec![Op::Barrier, Op::write(64, 64)],
    ];
    let mut dsm = sw_dsm(scripts, 1, SimDuration::ZERO);
    let first = dsm.run_iterations(1).unwrap();
    assert_eq!(first.ownership_transfers, 1, "t1 steals once");
    let second = dsm.run_iterations(1).unwrap();
    // Steady state: two transfers per iteration — the ping-pong of §4.1/§6.
    assert_eq!(second.ownership_transfers, 2);
    assert_eq!(second.remote_misses, 2);
    // Full pages move, no diffs.
    assert_eq!(second.net.messages(acorr_sim::MessageKind::PageFetch), 2);
    assert_eq!(second.net.messages(acorr_sim::MessageKind::DiffFetch), 0);
    assert_eq!(second.diffs_created, 0);
}

#[test]
fn readers_fetch_without_stealing() {
    // t0 writes; t1 and t2 (other nodes) read. Ownership stays at node 0.
    let scripts = vec![
        vec![Op::write(0, 64), Op::Barrier],
        vec![Op::Barrier, Op::read(0, 64)],
        vec![Op::Barrier, Op::read(0, 64)],
    ];
    let mut dsm = sw_dsm(scripts, 1, SimDuration::ZERO);
    let stats = dsm.run_iterations(2).unwrap();
    assert_eq!(stats.ownership_transfers, 0);
    assert!(stats.remote_misses >= 2, "both readers fault at least once");
}

#[test]
fn owner_rewrite_after_reader_invalidates_again() {
    // Iteration pattern: t0 writes, t1 reads. Each iteration t0's re-write
    // must re-invalidate t1 (an upgrade fault), and t1 must re-miss.
    let scripts = vec![
        vec![Op::write(0, 64), Op::Barrier],
        vec![Op::Barrier, Op::read(0, 64)],
    ];
    let mut dsm = sw_dsm(scripts, 1, SimDuration::ZERO);
    dsm.run_iterations(1).unwrap();
    let steady = dsm.run_iterations(3).unwrap();
    assert_eq!(steady.remote_misses, 3, "t1 re-misses every iteration");
    assert_eq!(steady.ownership_transfers, 0);
    assert_eq!(steady.twin_faults, 3, "t0 upgrade-faults every iteration");
}

#[test]
fn delta_interval_delays_steals() {
    // Same alternating-writer ping-pong, with and without a freeze.
    let build = |delta| {
        sw_dsm(
            vec![
                vec![Op::write(0, 64), Op::Barrier],
                vec![Op::Barrier, Op::write(64, 64)],
            ],
            1,
            delta,
        )
    };
    let mut fast = build(SimDuration::ZERO);
    fast.run_iterations(1).unwrap();
    let fast_stats = fast.run_iterations(2).unwrap();
    let mut frozen = build(SimDuration::from_millis(5));
    frozen.run_iterations(1).unwrap();
    let frozen_stats = frozen.run_iterations(2).unwrap();
    // Transfers still happen, but each steal waits out the freeze.
    assert_eq!(
        fast_stats.ownership_transfers,
        frozen_stats.ownership_transfers
    );
    assert!(
        frozen_stats.elapsed > fast_stats.elapsed + SimDuration::from_millis(5),
        "freeze must show up as stall time: {} vs {}",
        frozen_stats.elapsed,
        fast_stats.elapsed
    );
}

#[test]
fn single_writer_pays_more_for_false_sharing_than_multi_writer() {
    // The §6 argument: relaxed multi-writer consistency hides false sharing;
    // a single-writer protocol ping-pongs the page instead. Two threads on
    // different nodes write disjoint halves of the same page repeatedly.
    let scripts = || {
        vec![
            vec![Op::write(0, 64), Op::compute(10_000), Op::write(128, 64)],
            vec![
                Op::write(2048, 64),
                Op::compute(10_000),
                Op::write(2176, 64),
            ],
        ]
    };
    let cluster = ClusterConfig::new(2, 2).unwrap();
    let mw = {
        let config = DsmConfig::new(cluster);
        let mut dsm = Dsm::new(
            config,
            Scripted {
                shared_pages: 1,
                scripts: scripts(),
            },
            Mapping::stretch(&cluster),
        )
        .unwrap();
        dsm.run_iterations(1).unwrap();
        dsm.run_iterations(4).unwrap()
    };
    let sw = {
        let mut dsm = sw_dsm(scripts(), 1, SimDuration::ZERO);
        dsm.run_iterations(1).unwrap();
        dsm.run_iterations(4).unwrap()
    };
    assert!(
        sw.remote_misses >= 2 * mw.remote_misses,
        "false sharing: single-writer {} misses vs multi-writer {}",
        sw.remote_misses,
        mw.remote_misses
    );
    assert!(sw.ownership_transfers > 0);
    assert_eq!(mw.ownership_transfers, 0);
    // The page ping-pongs in full under single-writer, while multi-writer
    // exchanges only word diffs: the byte ratio is the striking part.
    assert!(
        sw.net.data_bytes() > 10 * mw.net.data_bytes(),
        "bytes: single-writer {} vs multi-writer {}",
        sw.net.data_bytes(),
        mw.net.data_bytes()
    );
}

#[test]
fn tracking_works_under_single_writer() {
    let scripts = vec![
        vec![Op::read(0, 64), Op::write(PAGE, 64)],
        vec![Op::read(0, 64)],
    ];
    let mut dsm = sw_dsm(scripts, 2, SimDuration::from_micros(100));
    let (stats, access) = dsm.run_tracked_iteration().unwrap();
    assert!(stats.tracking_faults >= 3);
    assert!(access.observed(0, acorr_mem::PageId(0)));
    assert!(access.observed(0, acorr_mem::PageId(1)));
    assert!(access.observed(1, acorr_mem::PageId(0)));
    assert_eq!(access.shared_pages(0, 1), 1);
}

#[test]
fn single_writer_never_garbage_collects() {
    let scripts = vec![vec![Op::write(0, 64)], vec![Op::write(PAGE, 64)]];
    let threads = scripts.len();
    let cluster = ClusterConfig::new(2, threads).unwrap();
    let config = DsmConfig::new(cluster)
        .with_write_mode(WriteMode::SingleWriter {
            delta: SimDuration::ZERO,
        })
        .with_gc_threshold(0);
    let mut dsm = Dsm::new(
        config,
        Scripted {
            shared_pages: 2,
            scripts,
        },
        Mapping::stretch(&cluster),
    )
    .unwrap();
    let stats = dsm.run_iterations(3).unwrap();
    assert_eq!(stats.gc_runs, 0);
    assert_eq!(stats.diffs_created, 0);
}
