//! Property-based tests for the crash/partition fault classes: partition ∘
//! heal is an identity on the delivered-message multiset, duplication and
//! corruption never inflate the paper-reproduction counters, and crash +
//! recovery always reaches an oracle-clean state — for *arbitrary*
//! in-range fault probabilities and seeds, not just the preset points the
//! deterministic tests in `faults_oracle.rs` pin.

// Property tests require the external `proptest` crate, which the
// offline default build cannot fetch; see the crate Cargo.toml.
#![cfg(feature = "proptest")]

use acorr_dsm::{Dsm, DsmConfig, IterStats, Op, Program, WriteMode};
use acorr_mem::PAGE_SIZE;
use acorr_sim::{ClusterConfig, FaultPlan, Mapping, SimDuration};
use proptest::prelude::*;

const PAGE: u64 = PAGE_SIZE as u64;

/// A lock-free sharing workload: without locks there is no
/// timing-dependent ordering, so every paper counter must be invariant
/// under non-crash fault plans.
struct BarrierOnly;

impl Program for BarrierOnly {
    fn name(&self) -> &str {
        "barrier-only"
    }
    fn shared_bytes(&self) -> u64 {
        5 * PAGE
    }
    fn num_threads(&self) -> usize {
        4
    }
    fn num_locks(&self) -> usize {
        0
    }
    fn script(&self, thread: usize, _iteration: usize) -> Vec<Op> {
        match thread {
            0 => vec![
                Op::read(0, PAGE),
                Op::write(0, 128),
                Op::Barrier,
                Op::read(PAGE, 64),
            ],
            1 => vec![
                Op::read(0, PAGE),
                Op::write(2048, 128),
                Op::write(PAGE, 64),
                Op::Barrier,
            ],
            2 => vec![
                Op::read(2 * PAGE, PAGE),
                Op::write(2 * PAGE + 512, 256),
                Op::Barrier,
            ],
            _ => vec![
                Op::write(3 * PAGE, 64),
                Op::Barrier,
                Op::read(2 * PAGE + 512, 64),
            ],
        }
    }
}

fn run(plan: FaultPlan, single_writer: bool, iterations: usize) -> IterStats {
    let cluster = ClusterConfig::new(2, 4).unwrap();
    let mut config = DsmConfig::new(cluster).with_faults(plan);
    if single_writer {
        config = config.with_write_mode(WriteMode::SingleWriter {
            delta: SimDuration::from_micros(100),
        });
    }
    let mapping = Mapping::stretch(&config.cluster);
    let mut dsm = Dsm::new(config, BarrierOnly, mapping).unwrap();
    dsm.enable_oracle();
    let stats = dsm.run_iterations(iterations).unwrap();
    assert_eq!(
        dsm.oracle_report().unwrap().violations,
        0,
        "oracle must stay clean"
    );
    stats
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Partition ∘ heal delivers the same message multiset as a fault-free
    /// run: identical misses and first-send bytes for any partition
    /// probability, window and seed.
    #[test]
    fn partition_heal_is_delivery_identity(
        seed in any::<u64>(),
        prob in 0.01f64..1.0,
        window_us in 100u64..5_000,
    ) {
        let clean = run(FaultPlan::none(), false, 5);
        let plan = FaultPlan {
            seed,
            partition_prob: prob,
            partition_window: SimDuration::from_micros(window_us),
            ..FaultPlan::none()
        };
        let faulted = run(plan, false, 5);
        prop_assert_eq!(faulted.remote_misses, clean.remote_misses);
        prop_assert_eq!(faulted.net.total_bytes(), clean.net.total_bytes());
        prop_assert_eq!(faulted.crashes, 0);
    }

    /// Duplication and corruption never inflate the paper counters; their
    /// traffic is confined to the retransmission ledger.
    #[test]
    fn duplication_never_inflates_paper_counters(
        seed in any::<u64>(),
        dup in 0.0f64..1.0,
        corrupt in 0.0f64..0.5,
    ) {
        let clean = run(FaultPlan::none(), false, 4);
        let plan = FaultPlan {
            seed,
            dup_prob: dup,
            corrupt_prob: corrupt,
            ..FaultPlan::none()
        };
        let faulted = run(plan, false, 4);
        prop_assert_eq!(faulted.remote_misses, clean.remote_misses);
        prop_assert_eq!(faulted.net.total_bytes(), clean.net.total_bytes());
        prop_assert!(
            faulted.net.total_retrans_messages()
                >= faulted.dup_messages + faulted.corrupt_detected
        );
    }

    /// Crash + recovery reaches an oracle-clean state under both write
    /// protocols, for any crash probability and seed; and each such run is
    /// deterministic (same seed, same bytes).
    #[test]
    fn crash_recovery_reaches_oracle_clean_state(
        seed in any::<u64>(),
        prob in 0.05f64..=1.0,
        single_writer in any::<bool>(),
    ) {
        let plan = FaultPlan {
            seed,
            crash_prob: prob,
            ..FaultPlan::none()
        };
        let a = run(plan.clone(), single_writer, 5);
        let b = run(plan, single_writer, 5);
        prop_assert_eq!(a, b);
    }
}
