//! [`EventSink`] implementations: JSONL, Chrome/Perfetto `trace_event`,
//! and a composite that fans one engine event stream out to every enabled
//! backend (including the bounded [`Trace`] ring) behind a shared handle.

use crate::json::Obj;
use crate::metrics::MetricsRegistry;
use acorr_dsm::trace::{Event, EventSink, SpanPhase, Trace};
use acorr_dsm::IterStats;
use acorr_sim::{FaultAction, NodeId, SimDuration, SimTime};
use std::sync::{Arc, Mutex, PoisonError};

/// Renders one event's type tag and payload members into `obj`.
fn push_event_fields(obj: &mut Obj, event: &Event) {
    match *event {
        Event::CorrelationFault { thread, page } => {
            obj.str("type", "correlation_fault")
                .u64("thread", thread as u64)
                .u64("page", page.as_u64());
        }
        Event::RemoteMiss { node, thread, page } => {
            obj.str("type", "remote_miss")
                .u64("node", u64::from(node.0))
                .u64("thread", thread as u64)
                .u64("page", page.as_u64());
        }
        Event::WriteFault { node, page } => {
            obj.str("type", "write_fault")
                .u64("node", u64::from(node.0))
                .u64("page", page.as_u64());
        }
        Event::OwnershipTransfer { page, to } => {
            obj.str("type", "ownership_transfer")
                .u64("page", page.as_u64())
                .u64("to", u64::from(to.0));
        }
        Event::DiffCreated { node, page, bytes } => {
            obj.str("type", "diff_created")
                .u64("node", u64::from(node.0))
                .u64("page", page.as_u64())
                .u64("bytes", bytes);
        }
        Event::GcConsolidated { page, owner } => {
            obj.str("type", "gc_consolidated")
                .u64("page", page.as_u64())
                .u64("owner", u64::from(owner.0));
        }
        Event::BarrierRelease { index } => {
            obj.str("type", "barrier_release").u64("index", index);
        }
        Event::LockGranted {
            lock,
            thread,
            remote,
        } => {
            obj.str("type", "lock_granted")
                .u64("lock", lock as u64)
                .u64("thread", thread as u64)
                .bool("remote", remote);
        }
        Event::Migration { thread, to } => {
            obj.str("type", "migration")
                .u64("thread", thread as u64)
                .u64("to", u64::from(to.0));
        }
        Event::ScheduleDecision {
            seq,
            alternatives,
            choice,
        } => {
            obj.str("type", "schedule_decision")
                .u64("seq", seq)
                .u64("alternatives", u64::from(alternatives))
                .u64("choice", u64::from(choice));
        }
        Event::FaultDecision {
            interval,
            alternatives,
            choice,
        } => {
            obj.str("type", "fault_decision")
                .u64("interval", interval)
                .u64("alternatives", u64::from(alternatives))
                .u64("choice", u64::from(choice));
        }
        Event::NodeCrash { node, pages } => {
            obj.str("type", "node_crash")
                .u64("node", u64::from(node.0))
                .u64("pages", pages);
        }
        Event::SpanBegin { id, phase, node } => {
            obj.str("type", "span_begin")
                .u64("id", id)
                .str("phase", phase.name())
                .u64("node", u64::from(node.0));
        }
        Event::SpanEnd { id, phase, node } => {
            obj.str("type", "span_end")
                .u64("id", id)
                .str("phase", phase.name())
                .u64("node", u64::from(node.0));
        }
        Event::PhaseShift { window, delta_ppm } => {
            obj.str("type", "phase_shift")
                .u64("window", window)
                .u64("delta_ppm", delta_ppm);
        }
        Event::RemapAccepted {
            step,
            moves,
            cut_before,
            cut_after,
            cost,
        } => {
            obj.str("type", "remap_accepted")
                .u64("step", step)
                .u64("moves", moves)
                .u64("cut_before", cut_before)
                .u64("cut_after", cut_after)
                .u64("cost", cost);
        }
        Event::RemapRejected {
            step,
            moves,
            cut_before,
            cut_after,
            cost,
        } => {
            obj.str("type", "remap_rejected")
                .u64("step", step)
                .u64("moves", moves)
                .u64("cut_before", cut_before)
                .u64("cut_after", cut_after)
                .u64("cost", cost);
        }
    }
}

/// The short stable name of a decoded [`FaultAction`], used in trace args.
fn fault_kind(action: FaultAction) -> &'static str {
    match action {
        FaultAction::None => "none",
        FaultAction::Partition { .. } => "partition",
        FaultAction::Duplicate => "dup",
        FaultAction::Corrupt => "corrupt",
        FaultAction::Crash { .. } => "crash",
    }
}

/// The fault section of a replay token prescribing exactly this decision:
/// `!` followed by `interval` zero choices, then `choice` — paste it after
/// a schedule token to replay the injected fault deterministically.
fn fault_token_fragment(interval: u64, choice: u32) -> String {
    let mut token = String::from("!");
    for _ in 0..interval {
        token.push_str("0.");
    }
    token.push_str(&choice.to_string());
    token
}

/// An [`EventSink`] that renders every callback as one JSON object per
/// line. Protocol events carry `"type"` tags; the derived streams appear
/// as `"fetch_latency"`, `"lock_latency"` and `"interval"` records, so the
/// file is a complete structured log of the run.
#[derive(Debug, Default)]
pub struct JsonlSink {
    lines: Vec<String>,
}

impl JsonlSink {
    /// An empty sink.
    pub fn new() -> Self {
        JsonlSink::default()
    }

    /// Number of lines recorded so far.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The rendered log: newline-separated JSON objects (trailing newline
    /// included when non-empty).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

impl EventSink for JsonlSink {
    fn record_event(&mut self, at: SimTime, event: &Event) {
        let mut obj = Obj::new();
        obj.u64("ts", at.as_nanos());
        push_event_fields(&mut obj, event);
        self.lines.push(obj.finish());
    }

    fn record_fetch_latency(&mut self, at: SimTime, node: NodeId, latency: SimDuration) {
        let mut obj = Obj::new();
        obj.u64("ts", at.as_nanos())
            .str("type", "fetch_latency")
            .u64("node", u64::from(node.0))
            .u64("latency_ns", latency.as_nanos());
        self.lines.push(obj.finish());
    }

    fn record_lock_latency(&mut self, at: SimTime, node: NodeId, latency: SimDuration) {
        let mut obj = Obj::new();
        obj.u64("ts", at.as_nanos())
            .str("type", "lock_latency")
            .u64("node", u64::from(node.0))
            .u64("latency_ns", latency.as_nanos());
        self.lines.push(obj.finish());
    }

    fn record_interval(&mut self, at: SimTime, barrier: u64, delta: &IterStats) {
        let mut obj = Obj::new();
        obj.u64("ts", at.as_nanos())
            .str("type", "interval")
            .u64("barrier", barrier)
            .raw("delta", &crate::json::iter_stats_json(delta));
        self.lines.push(obj.finish());
    }
}

/// Synthetic process IDs structuring the Chrome trace: one process for
/// protocol events, one for latency slices, one for the fault-plan lane.
const PID_PROTOCOL: u32 = 1;
const PID_LATENCY: u32 = 2;
const PID_FAULTS: u32 = 3;

/// An [`EventSink`] emitting Chrome `trace_event` JSON, loadable in
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
///
/// Track layout:
/// * **protocol** process — one track per node carrying instant events for
///   node-attributed protocol activity, plus a `control` track for
///   cluster-wide events (barriers, correlation faults, lock grants).
/// * **latency** process — one track per node with duration slices for
///   remote fetches and lock grants (slice end = completion time).
/// * **faults** process — one counter lane fed per barrier interval with
///   the fault injector's observable work (retries, retransmitted bytes).
///
/// Timestamps are microseconds with nanosecond fractions, as the format
/// requires.
#[derive(Debug)]
pub struct ChromeTraceSink {
    nodes: usize,
    events: Vec<String>,
}

fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

impl ChromeTraceSink {
    /// Creates a sink for a cluster of `nodes` nodes, pre-populating the
    /// process/thread naming metadata.
    pub fn new(nodes: usize) -> Self {
        let mut sink = ChromeTraceSink {
            nodes,
            events: Vec::new(),
        };
        for (pid, name) in [
            (PID_PROTOCOL, "protocol"),
            (PID_LATENCY, "latency"),
            (PID_FAULTS, "faults"),
        ] {
            let mut obj = Obj::new();
            obj.str("name", "process_name")
                .str("ph", "M")
                .u64("pid", u64::from(pid))
                .u64("tid", 0)
                .raw("args", &Obj::new().str("name", name).finish());
            sink.events.push(obj.finish());
        }
        for node in 0..nodes {
            for pid in [PID_PROTOCOL, PID_LATENCY] {
                let mut obj = Obj::new();
                obj.str("name", "thread_name")
                    .str("ph", "M")
                    .u64("pid", u64::from(pid))
                    .u64("tid", node as u64)
                    .raw(
                        "args",
                        &Obj::new().str("name", &format!("node {node}")).finish(),
                    );
                sink.events.push(obj.finish());
            }
        }
        for (offset, name) in [(0u64, "control"), (1, "scheduler")] {
            let mut obj = Obj::new();
            obj.str("name", "thread_name")
                .str("ph", "M")
                .u64("pid", u64::from(PID_PROTOCOL))
                .u64("tid", nodes as u64 + offset)
                .raw("args", &Obj::new().str("name", name).finish());
            sink.events.push(obj.finish());
        }
        sink
    }

    /// Number of trace events recorded (including naming metadata).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether only metadata has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The lane (tid within the protocol process) an event is drawn on:
    /// its node when it has one, the `control` lane otherwise.
    fn lane_of(&self, event: &Event) -> u64 {
        match *event {
            Event::RemoteMiss { node, .. }
            | Event::WriteFault { node, .. }
            | Event::DiffCreated { node, .. } => u64::from(node.0),
            Event::OwnershipTransfer { to, .. } | Event::Migration { to, .. } => u64::from(to.0),
            Event::GcConsolidated { owner, .. } => u64::from(owner.0),
            Event::CorrelationFault { .. }
            | Event::BarrierRelease { .. }
            | Event::LockGranted { .. } => self.nodes as u64,
            // Schedule and fault decisions share the scheduler track, so an
            // explored interleaving reads as a lane of choice markers in
            // Perfetto with the injected faults inline.
            Event::ScheduleDecision { .. } | Event::FaultDecision { .. } => self.nodes as u64 + 1,
            Event::NodeCrash { node, .. } => u64::from(node.0),
            // Spans are rendered as nestable slices before lane dispatch;
            // these arms only keep the match exhaustive.
            Event::SpanBegin { node, .. } | Event::SpanEnd { node, .. } => u64::from(node.0),
            // A phase shift is a cluster-wide detection, not a node event.
            Event::PhaseShift { .. } => self.nodes as u64,
            // Re-mapping verdicts are placement decisions: they join the
            // scheduler/decision track next to schedule and fault choices.
            Event::RemapAccepted { .. } | Event::RemapRejected { .. } => self.nodes as u64 + 1,
        }
    }

    /// Emits one endpoint of a nestable duration span (`ph` is `"b"` or
    /// `"e"`) on the latency process, on the owning node's track.
    fn span_mark(&mut self, at: SimTime, ph: &str, id: u64, phase: SpanPhase, node: NodeId) {
        let mut obj = Obj::new();
        obj.str("name", phase.name())
            .str("cat", "span")
            .str("ph", ph)
            .u64("id", id)
            .u64("pid", u64::from(PID_LATENCY))
            .u64("tid", u64::from(node.0))
            .raw("ts", &micros(at.as_nanos()));
        self.events.push(obj.finish());
    }

    fn instant(&mut self, at: SimTime, name: &str, tid: u64, args_json: &str) {
        let mut obj = Obj::new();
        obj.str("name", name)
            .str("ph", "i")
            .str("s", "t")
            .u64("pid", u64::from(PID_PROTOCOL))
            .u64("tid", tid)
            .raw("ts", &micros(at.as_nanos()))
            .raw("args", args_json);
        self.events.push(obj.finish());
    }

    fn slice(&mut self, end: SimTime, name: &str, tid: u64, dur: SimDuration) {
        let start_ns = end.as_nanos().saturating_sub(dur.as_nanos());
        let mut obj = Obj::new();
        obj.str("name", name)
            .str("ph", "X")
            .u64("pid", u64::from(PID_LATENCY))
            .u64("tid", tid)
            .raw("ts", &micros(start_ns))
            .raw("dur", &micros(dur.as_nanos()));
        self.events.push(obj.finish());
    }

    /// The rendered trace document: `{"displayTimeUnit":"ns",
    /// "traceEvents":[...]}`.
    pub fn render(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(ev);
        }
        out.push_str("]}");
        out
    }
}

impl EventSink for ChromeTraceSink {
    fn record_event(&mut self, at: SimTime, event: &Event) {
        // Profiling spans render as Perfetto nestable slices, not instants.
        match *event {
            Event::SpanBegin { id, phase, node } => {
                self.span_mark(at, "b", id, phase, node);
                return;
            }
            Event::SpanEnd { id, phase, node } => {
                self.span_mark(at, "e", id, phase, node);
                return;
            }
            _ => {}
        }
        let tid = self.lane_of(event);
        let mut args = Obj::new();
        push_event_fields(&mut args, event);
        // Fault decisions additionally carry the decoded fault kind and the
        // replay-token fragment that reproduces them, so the scheduler lane
        // doubles as a copy-paste repro line.
        if let Event::FaultDecision {
            interval, choice, ..
        } = *event
        {
            let action = FaultAction::from_choice(choice as usize, self.nodes);
            args.str("kind", fault_kind(action))
                .str("token", &fault_token_fragment(interval, choice));
        }
        let args_json = args.finish();
        // The "type" member doubles as the slice name; Perfetto groups
        // instants by name, so kinds form visual rows.
        let name = match *event {
            Event::CorrelationFault { .. } => "correlation_fault",
            Event::RemoteMiss { .. } => "remote_miss",
            Event::WriteFault { .. } => "write_fault",
            Event::OwnershipTransfer { .. } => "ownership_transfer",
            Event::DiffCreated { .. } => "diff_created",
            Event::GcConsolidated { .. } => "gc_consolidated",
            Event::BarrierRelease { .. } => "barrier_release",
            Event::LockGranted { .. } => "lock_granted",
            Event::Migration { .. } => "migration",
            Event::ScheduleDecision { .. } => "schedule_decision",
            Event::FaultDecision { .. } => "fault_decision",
            Event::NodeCrash { .. } => "node_crash",
            // Handled above; kept for exhaustiveness.
            Event::SpanBegin { .. } => "span_begin",
            Event::SpanEnd { .. } => "span_end",
            Event::PhaseShift { .. } => "phase_shift",
            Event::RemapAccepted { .. } => "remap_accepted",
            Event::RemapRejected { .. } => "remap_rejected",
        };
        self.instant(at, name, tid, &args_json);
    }

    fn record_fetch_latency(&mut self, at: SimTime, node: NodeId, latency: SimDuration) {
        self.slice(at, "fetch", u64::from(node.0), latency);
    }

    fn record_lock_latency(&mut self, at: SimTime, node: NodeId, latency: SimDuration) {
        self.slice(at, "lock", u64::from(node.0), latency);
    }

    fn record_interval(&mut self, at: SimTime, barrier: u64, delta: &IterStats) {
        let mut args = Obj::new();
        args.u64("retries", delta.retries)
            .u64("retrans_bytes", delta.net.total_retrans_bytes());
        let mut obj = Obj::new();
        obj.str("name", "fault-plan")
            .str("ph", "C")
            .u64("pid", u64::from(PID_FAULTS))
            .u64("tid", 0)
            .u64("id", barrier)
            .raw("ts", &micros(at.as_nanos()))
            .raw("args", &args.finish());
        self.events.push(obj.finish());
    }
}

/// The backend buffers a [`MultiSink`] writes into, shared with the
/// [`ObsHandle`] that outlives the run.
#[derive(Debug, Default)]
pub struct ObsBuffers {
    /// JSONL structured log, when enabled.
    pub jsonl: Option<JsonlSink>,
    /// Chrome/Perfetto trace, when enabled.
    pub chrome: Option<ChromeTraceSink>,
    /// Interval time series + latency histograms, when enabled.
    pub metrics: Option<MetricsRegistry>,
    /// Bounded event ring, when a non-zero capacity was configured.
    pub ring: Option<Trace>,
}

type Shared = Arc<Mutex<ObsBuffers>>;

/// A composite [`EventSink`] fanning each callback out to every enabled
/// backend. The buffers live behind an `Arc`, so the paired [`ObsHandle`]
/// can collect the results after the engine (which owns the boxed sink)
/// is done — no trait-object downcasting required.
#[derive(Debug)]
pub struct MultiSink {
    inner: Shared,
}

/// The collection side of a [`MultiSink`]: call [`ObsHandle::finish`] once
/// the run completes to take the rendered artifacts.
#[derive(Debug, Clone)]
pub struct ObsHandle {
    inner: Shared,
}

/// Rendered observability artifacts for one run. Fields are `None` when
/// the corresponding backend was disabled in the [`crate::ObsConfig`].
#[derive(Debug, Default)]
pub struct Observation {
    /// JSONL structured log (`events.jsonl`).
    pub events_jsonl: Option<String>,
    /// Chrome `trace_event` document (`trace.json`).
    pub chrome_trace: Option<String>,
    /// Interval time-series CSV (`metrics.csv`).
    pub metrics_csv: Option<String>,
    /// Latency histogram CSV (`histograms.csv`).
    pub histograms_csv: Option<String>,
    /// The drained bounded event ring.
    pub ring: Option<Trace>,
}

impl MultiSink {
    /// Builds a composite sink from an [`crate::ObsConfig`] for a cluster
    /// of `nodes` nodes, returning the sink (to attach to the engine) and
    /// the handle (to collect results from).
    pub fn new(config: &crate::ObsConfig, nodes: usize) -> (MultiSink, ObsHandle) {
        let buffers = ObsBuffers {
            jsonl: config.jsonl.then(JsonlSink::new),
            chrome: config.chrome.then(|| ChromeTraceSink::new(nodes)),
            metrics: config.metrics.then(MetricsRegistry::new),
            ring: (config.ring_capacity > 0).then(|| Trace::new(config.ring_capacity)),
        };
        let inner = Arc::new(Mutex::new(buffers));
        (
            MultiSink {
                inner: Arc::clone(&inner),
            },
            ObsHandle { inner },
        )
    }

    fn with<F: FnOnce(&mut ObsBuffers)>(&self, f: F) {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard);
    }
}

impl EventSink for MultiSink {
    fn record_event(&mut self, at: SimTime, event: &Event) {
        self.with(|b| {
            if let Some(s) = b.jsonl.as_mut() {
                s.record_event(at, event);
            }
            if let Some(s) = b.chrome.as_mut() {
                s.record_event(at, event);
            }
            if let Some(s) = b.ring.as_mut() {
                s.record_event(at, event);
            }
        });
    }

    fn record_fetch_latency(&mut self, at: SimTime, node: NodeId, latency: SimDuration) {
        self.with(|b| {
            if let Some(s) = b.jsonl.as_mut() {
                s.record_fetch_latency(at, node, latency);
            }
            if let Some(s) = b.chrome.as_mut() {
                s.record_fetch_latency(at, node, latency);
            }
            if let Some(m) = b.metrics.as_mut() {
                m.record_fetch(latency);
            }
        });
    }

    fn record_lock_latency(&mut self, at: SimTime, node: NodeId, latency: SimDuration) {
        self.with(|b| {
            if let Some(s) = b.jsonl.as_mut() {
                s.record_lock_latency(at, node, latency);
            }
            if let Some(s) = b.chrome.as_mut() {
                s.record_lock_latency(at, node, latency);
            }
            if let Some(m) = b.metrics.as_mut() {
                m.record_lock(latency);
            }
        });
    }

    fn record_interval(&mut self, at: SimTime, barrier: u64, delta: &IterStats) {
        self.with(|b| {
            if let Some(s) = b.jsonl.as_mut() {
                s.record_interval(at, barrier, delta);
            }
            if let Some(s) = b.chrome.as_mut() {
                s.record_interval(at, barrier, delta);
            }
            if let Some(m) = b.metrics.as_mut() {
                m.record_interval(at, barrier, delta);
            }
        });
    }
}

impl ObsHandle {
    /// Records one event into every enabled backend from the collection
    /// side. This is how post-hoc detections (e.g. [`Event::PhaseShift`]
    /// from the analytics layer) join the same artifacts as engine events:
    /// the handle shares the buffers with the attached [`MultiSink`].
    pub fn record_event(&self, at: SimTime, event: &Event) {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let b = &mut *guard;
        if let Some(s) = b.jsonl.as_mut() {
            s.record_event(at, event);
        }
        if let Some(s) = b.chrome.as_mut() {
            s.record_event(at, event);
        }
        if let Some(s) = b.ring.as_mut() {
            s.record_event(at, event);
        }
    }

    /// Takes the buffers and renders them. Call after the run; artifacts
    /// recorded afterwards are lost.
    pub fn finish(&self) -> Observation {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let buffers = std::mem::take(&mut *guard);
        drop(guard);
        Observation {
            events_jsonl: buffers.jsonl.map(|s| s.render()),
            chrome_trace: buffers.chrome.map(|s| s.render()),
            metrics_csv: buffers.metrics.as_ref().map(|m| m.timeseries_csv()),
            histograms_csv: buffers.metrics.as_ref().map(|m| m.histogram_csv()),
            ring: buffers.ring,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use acorr_mem::PageId;

    fn feed(sink: &mut dyn EventSink) {
        sink.record_event(
            SimTime::from_nanos(100),
            &Event::RemoteMiss {
                node: NodeId(1),
                thread: 3,
                page: PageId(7),
            },
        );
        sink.record_event(
            SimTime::from_nanos(200),
            &Event::BarrierRelease { index: 0 },
        );
        sink.record_fetch_latency(
            SimTime::from_nanos(300),
            NodeId(1),
            SimDuration::from_nanos(250),
        );
        sink.record_lock_latency(
            SimTime::from_nanos(400),
            NodeId(0),
            SimDuration::from_nanos(50),
        );
        let mut delta = IterStats::new();
        delta.retries = 2;
        sink.record_interval(SimTime::from_nanos(500), 0, &delta);
    }

    #[test]
    fn jsonl_lines_are_each_valid_json() {
        let mut sink = JsonlSink::new();
        feed(&mut sink);
        assert_eq!(sink.len(), 5);
        let text = sink.render();
        let mut types = Vec::new();
        for line in text.lines() {
            let v = parse(line).expect("valid JSON line");
            types.push(v.get("type").unwrap().as_str().unwrap().to_string());
        }
        assert_eq!(
            types,
            vec![
                "remote_miss",
                "barrier_release",
                "fetch_latency",
                "lock_latency",
                "interval"
            ]
        );
    }

    #[test]
    fn chrome_trace_is_valid_and_structured() {
        let mut sink = ChromeTraceSink::new(2);
        feed(&mut sink);
        let doc = parse(&sink.render()).expect("valid trace JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // Metadata: 3 process names + 2 nodes x 2 pids + control and
        // scheduler lanes.
        let meta = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .count();
        assert_eq!(meta, 9);
        // The miss is an instant on node 1's protocol track.
        let miss = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("remote_miss"))
            .unwrap();
        assert_eq!(miss.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(miss.get("tid").unwrap().as_u64(), Some(1));
        // The barrier lands on the control lane (tid == nodes).
        let barrier = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("barrier_release"))
            .unwrap();
        assert_eq!(barrier.get("tid").unwrap().as_u64(), Some(2));
        // The fetch is a duration slice ending at its completion time.
        let fetch = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("fetch"))
            .unwrap();
        assert_eq!(fetch.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(fetch.get("ts").unwrap().as_f64(), Some(0.05));
        assert_eq!(fetch.get("dur").unwrap().as_f64(), Some(0.25));
        // The fault lane is a counter.
        let faults = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("fault-plan"))
            .unwrap();
        assert_eq!(faults.get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(
            faults.get("args").unwrap().get("retries").unwrap().as_u64(),
            Some(2)
        );
    }

    #[test]
    fn spans_render_as_nestable_slices() {
        let mut sink = ChromeTraceSink::new(2);
        sink.record_event(
            SimTime::from_nanos(1000),
            &Event::SpanBegin {
                id: 7,
                phase: SpanPhase::Fetch,
                node: NodeId(1),
            },
        );
        sink.record_event(
            SimTime::from_nanos(3000),
            &Event::SpanEnd {
                id: 7,
                phase: SpanPhase::Fetch,
                node: NodeId(1),
            },
        );
        let doc = parse(&sink.render()).expect("valid trace JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // No new metadata lanes: spans reuse the latency process tracks.
        let meta = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .count();
        assert_eq!(meta, 9);
        let begin = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("b"))
            .unwrap();
        assert_eq!(begin.get("name").unwrap().as_str(), Some("fetch"));
        assert_eq!(begin.get("cat").unwrap().as_str(), Some("span"));
        assert_eq!(begin.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(begin.get("pid").unwrap().as_u64(), Some(2));
        assert_eq!(begin.get("tid").unwrap().as_u64(), Some(1));
        assert_eq!(begin.get("ts").unwrap().as_f64(), Some(1.0));
        let end = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("e"))
            .unwrap();
        assert_eq!(end.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(end.get("ts").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn fault_decisions_carry_kind_and_replay_token() {
        let mut sink = ChromeTraceSink::new(4);
        sink.record_event(
            SimTime::from_nanos(500),
            &Event::FaultDecision {
                interval: 2,
                alternatives: 5,
                choice: 1,
            },
        );
        let doc = parse(&sink.render()).expect("valid trace JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let fd = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("fault_decision"))
            .unwrap();
        // Scheduler lane: tid == nodes + 1.
        assert_eq!(fd.get("tid").unwrap().as_u64(), Some(5));
        let args = fd.get("args").unwrap();
        assert_eq!(args.get("kind").unwrap().as_str(), Some("partition"));
        assert_eq!(args.get("token").unwrap().as_str(), Some("!0.0.1"));
    }

    #[test]
    fn phase_shift_lands_on_the_control_lane() {
        let mut sink = ChromeTraceSink::new(2);
        sink.record_event(
            SimTime::from_nanos(900),
            &Event::PhaseShift {
                window: 3,
                delta_ppm: 412_000,
            },
        );
        let doc = parse(&sink.render()).expect("valid trace JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let shift = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("phase_shift"))
            .unwrap();
        assert_eq!(shift.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(shift.get("tid").unwrap().as_u64(), Some(2));
        let args = shift.get("args").unwrap();
        assert_eq!(args.get("window").unwrap().as_u64(), Some(3));
        assert_eq!(args.get("delta_ppm").unwrap().as_u64(), Some(412_000));
    }

    #[test]
    fn remap_verdicts_land_on_the_decision_lane_with_costs() {
        let mut sink = ChromeTraceSink::new(2);
        sink.record_event(
            SimTime::from_nanos(1000),
            &Event::RemapAccepted {
                step: 12,
                moves: 8,
                cut_before: 400,
                cut_after: 120,
                cost: 32,
            },
        );
        sink.record_event(
            SimTime::from_nanos(1100),
            &Event::RemapRejected {
                step: 24,
                moves: 2,
                cut_before: 96,
                cut_after: 90,
                cost: 8,
            },
        );
        let doc = parse(&sink.render()).expect("valid trace JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let accepted = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("remap_accepted"))
            .unwrap();
        // Decision lane: tid == nodes + 1, next to schedule choices.
        assert_eq!(accepted.get("tid").unwrap().as_u64(), Some(3));
        let args = accepted.get("args").unwrap();
        assert_eq!(args.get("moves").unwrap().as_u64(), Some(8));
        assert_eq!(args.get("cut_before").unwrap().as_u64(), Some(400));
        assert_eq!(args.get("cut_after").unwrap().as_u64(), Some(120));
        assert_eq!(args.get("cost").unwrap().as_u64(), Some(32));
        let rejected = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("remap_rejected"))
            .unwrap();
        assert_eq!(rejected.get("tid").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn remap_events_reach_jsonl_through_the_handle() {
        let config = crate::ObsConfig::all();
        let (_sink, handle) = MultiSink::new(&config, 2);
        handle.record_event(
            SimTime::from_nanos(700),
            &Event::RemapRejected {
                step: 3,
                moves: 4,
                cut_before: 50,
                cut_after: 48,
                cost: 16,
            },
        );
        let obs = handle.finish();
        let jsonl = obs.events_jsonl.expect("jsonl enabled");
        assert!(jsonl.contains("\"type\":\"remap_rejected\""));
        assert!(jsonl.contains("\"cut_before\":50"));
    }

    #[test]
    fn handle_record_event_joins_the_same_buffers() {
        let config = crate::ObsConfig::all();
        let (mut sink, handle) = MultiSink::new(&config, 2);
        feed(&mut sink);
        handle.record_event(
            SimTime::from_nanos(600),
            &Event::PhaseShift {
                window: 1,
                delta_ppm: 500_000,
            },
        );
        let obs = handle.finish();
        let jsonl = obs.events_jsonl.expect("jsonl enabled");
        assert!(jsonl.contains("\"type\":\"phase_shift\""));
        let chrome = obs.chrome_trace.expect("chrome enabled");
        assert!(chrome.contains("\"name\":\"phase_shift\""));
    }

    #[test]
    fn multi_sink_fans_out_and_handle_collects() {
        let config = crate::ObsConfig::all();
        let (mut sink, handle) = MultiSink::new(&config, 2);
        feed(&mut sink);
        let obs = handle.finish();
        let jsonl = obs.events_jsonl.expect("jsonl enabled");
        assert_eq!(jsonl.lines().count(), 5);
        let chrome = obs.chrome_trace.expect("chrome enabled");
        assert!(parse(&chrome).is_ok());
        let metrics = obs.metrics_csv.expect("metrics enabled");
        assert_eq!(metrics.lines().count(), 2);
        let hists = obs.histograms_csv.expect("metrics enabled");
        assert!(hists.contains("fetch,"));
        let ring = obs.ring.expect("ring enabled");
        assert_eq!(ring.len(), 2);
        // A second finish sees empty buffers.
        let again = handle.finish();
        assert!(again.events_jsonl.is_none());
    }

    #[test]
    fn disabled_backends_stay_none() {
        let config = crate::ObsConfig {
            jsonl: true,
            chrome: false,
            metrics: false,
            ring_capacity: 0,
            spans: false,
        };
        let (mut sink, handle) = MultiSink::new(&config, 1);
        feed(&mut sink);
        let obs = handle.finish();
        assert!(obs.events_jsonl.is_some());
        assert!(obs.chrome_trace.is_none());
        assert!(obs.metrics_csv.is_none());
        assert!(obs.histograms_csv.is_none());
        assert!(obs.ring.is_none());
    }
}
