//! Dependency-free JSON encoding and a minimal parser.
//!
//! The workspace's tier-1 build must resolve fully offline, so this module
//! hand-rolls the small JSON surface the observability layer needs instead
//! of pulling in `serde`: an escaper, push-style object/array builders, a
//! recursive-descent parser (used to read manifests back and to validate
//! emitted artifacts in tests), and canonical encodings for [`IterStats`]
//! and [`NetStats`].
//!
//! Numbers are kept as their raw token text on the parse side so `u64`
//! values (seeds, byte counts) round-trip without `f64` precision loss.

use acorr_dsm::IterStats;
use acorr_sim::{MessageKind, NetStats};
use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal (no surrounding
/// quotes are added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Push-style JSON object builder.
///
/// ```
/// use acorr_obs::json::Obj;
/// let mut o = Obj::new();
/// o.str("name", "sor").u64("seed", 7).bool("ok", true);
/// assert_eq!(o.finish(), r#"{"name":"sor","seed":7,"ok":true}"#);
/// ```
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
    any: bool,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Obj {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, key: &str) -> &mut Self {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        let _ = write!(self.buf, "\"{}\":", escape(key));
        self
    }

    /// Adds a string member.
    pub fn str(&mut self, key: &str, val: &str) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "\"{}\"", escape(val));
        self
    }

    /// Adds an unsigned integer member.
    pub fn u64(&mut self, key: &str, val: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{val}");
        self
    }

    /// Adds a floating-point member (rendered with enough digits to
    /// round-trip).
    pub fn f64(&mut self, key: &str, val: f64) -> &mut Self {
        self.key(key);
        if val.is_finite() {
            let _ = write!(self.buf, "{val}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean member.
    pub fn bool(&mut self, key: &str, val: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if val { "true" } else { "false" });
        self
    }

    /// Adds a member whose value is already-rendered JSON.
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(&mut self) -> String {
        let mut out = std::mem::take(&mut self.buf);
        out.push('}');
        out
    }
}

/// A parsed JSON value. Numbers keep their raw token text (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw token text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, members in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a member of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `u64`, when this is an unsigned integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f64`, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Value::Str),
        Some(b't') => parse_lit(bytes, pos, "true").map(|_| Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false").map(|_| Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null").map(|_| Value::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if raw.is_empty() || raw.parse::<f64>().is_err() {
        return Err(format!("invalid number at byte {start}"));
    }
    Ok(Value::Num(raw.to_string()))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole run of ordinary characters at once. The
                // delimiters are ASCII, so they can't occur inside a
                // multi-byte sequence, and the input arrived as a &str, so
                // the run is valid UTF-8.
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(run);
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let val = parse_value(bytes, pos)?;
        members.push((key, val));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Canonical JSON encoding of [`NetStats`]: one member per
/// [`MessageKind`] (in `MessageKind::ALL` order) with message/byte and
/// retransmission counters.
pub fn net_stats_json(net: &NetStats) -> String {
    let mut obj = Obj::new();
    for kind in MessageKind::ALL {
        let mut inner = Obj::new();
        inner
            .u64("messages", net.messages(kind))
            .u64("bytes", net.bytes(kind))
            .u64("retrans_messages", net.retrans_messages(kind))
            .u64("retrans_bytes", net.retrans_bytes(kind));
        obj.raw(kind.label(), &inner.finish());
    }
    obj.finish()
}

/// Canonical JSON encoding of [`IterStats`]. Durations are nanoseconds.
/// This is also the preimage of the manifest's stats digest, so the member
/// set and order are part of the manifest schema.
pub fn iter_stats_json(stats: &IterStats) -> String {
    let mut obj = Obj::new();
    obj.u64("elapsed_ns", stats.elapsed.as_nanos())
        .u64("stall_ns", stats.stall.as_nanos())
        .u64("remote_misses", stats.remote_misses)
        .u64("tracking_faults", stats.tracking_faults)
        .u64("coherence_faults", stats.coherence_faults)
        .u64("twin_faults", stats.twin_faults)
        .u64("ownership_transfers", stats.ownership_transfers)
        .u64("diffs_created", stats.diffs_created)
        .u64("diff_bytes_created", stats.diff_bytes_created)
        .u64("barriers", stats.barriers)
        .u64("lock_acquires", stats.lock_acquires)
        .u64("remote_lock_acquires", stats.remote_lock_acquires)
        .u64("gc_runs", stats.gc_runs)
        .u64("gc_pages", stats.gc_pages)
        .u64("migrations", stats.migrations)
        .u64("retries", stats.retries)
        .u64("dup_messages", stats.dup_messages)
        .u64("dup_bytes", stats.dup_bytes)
        .u64("corrupt_detected", stats.corrupt_detected)
        .u64("partition_delays", stats.partition_delays)
        .u64("crashes", stats.crashes)
        .u64("pages_wiped", stats.pages_wiped)
        .raw("net", &net_stats_json(&stats.net));
    obj.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("π"), "π");
    }

    #[test]
    fn builder_produces_valid_json() {
        let mut o = Obj::new();
        o.str("s", "x\"y")
            .u64("u", u64::MAX)
            .f64("f", 1.5)
            .bool("b", false)
            .raw("a", "[1,2]");
        let text = o.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("u").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("b").unwrap(), &Value::Bool(false));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn parser_round_trips_structures() {
        let v = parse(r#" {"a": [1, -2.5e3, "x", null, true], "b": {"c": ""}} "#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(arr[3], Value::Null);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some(""));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\q\"", "nan"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let v = parse(r#""a\u0041\n\t\"\\b π""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\t\"\\b π"));
    }

    #[test]
    fn u64_precision_survives_round_trip() {
        let big = u64::MAX - 1;
        let text = format!("{{\"x\":{big}}}");
        assert_eq!(parse(&text).unwrap().get("x").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn json_edge_values_round_trip() {
        // The corners the artifact schema actually exercises: 64-bit
        // counters at saturation, negative zero (f64 sign bit must
        // survive), and deep nesting.
        let mut o = Obj::new();
        o.u64("max", u64::MAX)
            .f64("nz", -0.0)
            .raw("deep", "[[[[1]]]]");
        let v = parse(&o.finish()).unwrap();
        assert_eq!(v.get("max").unwrap().as_u64(), Some(u64::MAX));
        let nz = v.get("nz").unwrap().as_f64().unwrap();
        assert_eq!(nz.to_bits(), (-0.0f64).to_bits(), "sign bit lost");
        let deep = v.get("deep").unwrap();
        let leaf = &deep.as_arr().unwrap()[0].as_arr().unwrap()[0]
            .as_arr()
            .unwrap()[0];
        assert_eq!(leaf.as_arr().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn iter_stats_encoding_is_parseable_and_complete() {
        let mut s = IterStats::new();
        s.remote_misses = 42;
        s.net.record(MessageKind::PageFetch, 4096);
        let text = iter_stats_json(&s);
        let v = parse(&text).unwrap();
        assert_eq!(v.get("remote_misses").unwrap().as_u64(), Some(42));
        let page = v.get("net").unwrap().get("page").unwrap();
        assert_eq!(page.get("bytes").unwrap().as_u64(), Some(4096));
        assert_eq!(page.get("messages").unwrap().as_u64(), Some(1));
        // Every MessageKind appears in the net breakdown.
        for kind in MessageKind::ALL {
            assert!(v.get("net").unwrap().get(kind.label()).is_some());
        }
    }
}

#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any string survives escape → parse, including long ones and
        /// arbitrary Unicode (the JSONL sinks carry app and phase names
        /// straight from user-controlled `Program::name`).
        #[test]
        fn strings_round_trip(
            chars in proptest::collection::vec(proptest::char::any(), 0..2048)
        ) {
            let s: String = chars.into_iter().collect();
            let mut o = Obj::new();
            o.str("s", &s);
            let v = parse(&o.finish()).unwrap();
            prop_assert_eq!(v.get("s").unwrap().as_str(), Some(s.as_str()));
        }

        /// Every u64 — the counters are 64-bit and the parser keeps raw
        /// number tokens precisely so `u64::MAX` must not lose precision
        /// through an f64 detour.
        #[test]
        fn u64_round_trips_exactly(u in proptest::num::u64::ANY) {
            let mut o = Obj::new();
            o.u64("u", u);
            let v = parse(&o.finish()).unwrap();
            prop_assert_eq!(v.get("u").unwrap().as_u64(), Some(u));
        }

        /// Finite f64 members round-trip bit-for-bit (Rust's shortest
        /// display representation re-parses to the same bits, and -0.0
        /// renders as "-0", keeping the sign).
        #[test]
        fn finite_f64_round_trips_bitwise(
            f in proptest::num::f64::ANY.prop_filter("finite", |f| f.is_finite())
        ) {
            let mut o = Obj::new();
            o.f64("f", f);
            let v = parse(&o.finish()).unwrap();
            let back = v.get("f").unwrap().as_f64().unwrap();
            prop_assert_eq!(back.to_bits(), f.to_bits());
        }

        /// Nested arrays keep shape and element values.
        #[test]
        fn nested_arrays_round_trip(
            rows in proptest::collection::vec(
                proptest::collection::vec(proptest::num::u64::ANY, 0..8),
                0..8,
            )
        ) {
            let rendered = format!(
                "[{}]",
                rows.iter()
                    .map(|row| format!(
                        "[{}]",
                        row.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
                    ))
                    .collect::<Vec<_>>()
                    .join(",")
            );
            let v = parse(&rendered).unwrap();
            let arr = v.as_arr().unwrap();
            prop_assert_eq!(arr.len(), rows.len());
            for (parsed, row) in arr.iter().zip(&rows) {
                let inner = parsed.as_arr().unwrap();
                prop_assert_eq!(inner.len(), row.len());
                for (item, &want) in inner.iter().zip(row) {
                    prop_assert_eq!(item.as_u64(), Some(want));
                }
            }
        }
    }
}
