//! # acorr-obs — structured observability for the DSM reproduction
//!
//! Turns the engine's protocol event stream into inspectable artifacts
//! without perturbing the simulation. Built on the [`EventSink`] hook in
//! `acorr-dsm`, this crate provides:
//!
//! * **Sinks** ([`sinks`]) — a JSONL structured log, a Chrome/Perfetto
//!   `trace_event` exporter (one track per node, a control lane, latency
//!   slices and a fault-plan counter lane), and a composite [`MultiSink`]
//!   that fans out to every enabled backend plus the bounded in-memory
//!   ring.
//! * **Metrics** ([`metrics`]) — per-barrier-interval time series of
//!   statistic deltas and log2-bucketed histograms of remote-fetch and
//!   lock-grant latencies, exportable as CSV.
//! * **Manifests** ([`manifest`]) — a JSON reproducibility record per run
//!   or artifact: parameters, git revision, and an FNV-1a digest of the
//!   final statistics, so any result can be replayed and checked
//!   bit-for-bit.
//! * **JSON** ([`json`]) — the dependency-free encoder/parser everything
//!   above uses, preserving the workspace's offline-build guarantee.
//!
//! Observability is a **pure observer**: attaching any combination of
//! sinks leaves simulated time, statistics and golden tables bit-identical
//! (`tests/observability.rs` in the workspace root enforces this).
//!
//! ```
//! use acorr_obs::{ObsConfig, MultiSink};
//! use acorr_dsm::trace::{Event, EventSink};
//! use acorr_sim::SimTime;
//!
//! let (mut sink, handle) = MultiSink::new(&ObsConfig::all(), 4);
//! sink.record_event(SimTime::ZERO, &Event::BarrierRelease { index: 0 });
//! let observation = handle.finish();
//! assert_eq!(observation.events_jsonl.unwrap().lines().count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod phases;
pub mod sinks;
pub mod spans;

pub use analyze::{Analysis, IntervalPath, PageHeat, ThreadComm};
pub use manifest::{bytes_digest, fnv1a, git_describe, stats_digest, RunManifest};
pub use metrics::{Log2Histogram, MetricsRegistry};
pub use phases::{PhaseDetector, PhaseShiftMark};
pub use sinks::{ChromeTraceSink, JsonlSink, MultiSink, ObsHandle, Observation};
pub use spans::{SpanProfile, SpanTotals};

use acorr_dsm::trace::EventSink;
use std::io;
use std::path::{Path, PathBuf};

/// Which observability backends to enable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Emit the JSONL structured log.
    pub jsonl: bool,
    /// Emit the Chrome/Perfetto trace.
    pub chrome: bool,
    /// Collect the interval time series and latency histograms.
    pub metrics: bool,
    /// Capacity of the bounded in-memory event ring (0 disables it).
    pub ring_capacity: usize,
    /// Ask the engine for span-based self-profiling (`SpanBegin`/`SpanEnd`
    /// brackets around engine phases). A pure observer like the rest.
    pub spans: bool,
}

impl ObsConfig {
    /// Everything on: JSONL, Chrome trace, metrics, span profiling, and a
    /// 4096-event ring.
    pub fn all() -> Self {
        ObsConfig {
            jsonl: true,
            chrome: true,
            metrics: true,
            ring_capacity: 4096,
            spans: true,
        }
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::all()
    }
}

/// Builds a boxed composite sink (ready for `Dsm::attach_sink`) and its
/// collection handle for a cluster of `nodes` nodes.
pub fn observer(config: &ObsConfig, nodes: usize) -> (Box<dyn EventSink>, ObsHandle) {
    let (sink, handle) = MultiSink::new(config, nodes);
    (Box::new(sink), handle)
}

impl Observation {
    /// Writes the present artifacts into `dir` (created if needed) under
    /// their standard names — `events.jsonl`, `trace.json`, `metrics.csv`,
    /// `histograms.csv` — and returns the paths written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from directory creation or writes.
    pub fn write_to(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        let entries: [(&str, Option<&String>); 4] = [
            ("events.jsonl", self.events_jsonl.as_ref()),
            ("trace.json", self.chrome_trace.as_ref()),
            ("metrics.csv", self.metrics_csv.as_ref()),
            ("histograms.csv", self.histograms_csv.as_ref()),
        ];
        for (name, contents) in entries {
            if let Some(contents) = contents {
                let path = dir.join(name);
                std::fs::write(&path, contents)?;
                written.push(path);
            }
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_dsm::trace::Event;
    use acorr_sim::SimTime;

    #[test]
    fn observer_builds_boxed_sink() {
        let (mut sink, handle) = observer(&ObsConfig::all(), 2);
        sink.record_event(SimTime::ZERO, &Event::BarrierRelease { index: 0 });
        let obs = handle.finish();
        assert!(obs.events_jsonl.is_some());
        assert!(obs.chrome_trace.is_some());
        assert!(obs.ring.is_some());
    }

    #[test]
    fn write_to_emits_standard_names() {
        let dir = std::env::temp_dir().join(format!("acorr-obs-test-{}", std::process::id()));
        let (mut sink, handle) = observer(&ObsConfig::all(), 1);
        sink.record_event(SimTime::ZERO, &Event::BarrierRelease { index: 0 });
        let obs = handle.finish();
        let written = obs.write_to(&dir).unwrap();
        let names: Vec<String> = written
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec![
                "events.jsonl",
                "trace.json",
                "metrics.csv",
                "histograms.csv"
            ]
        );
        for p in &written {
            assert!(p.exists());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
