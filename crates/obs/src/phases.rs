//! Windowed correlation phase-change detection.
//!
//! ROADMAP's online re-mapping trigger needs to know *when* an
//! application's sharing pattern shifts. This module folds a stream of
//! per-unit correlation observations (one per tracked iteration or per
//! barrier interval) into tumbling windows, compares each closed window
//! against an exponentially aged baseline of the preceding windows
//! (§7's aging), and fires a [`PhaseShiftMark`] when the normalized
//! divergence crosses a threshold — with hysteresis, so a sustained new
//! phase fires once instead of every window.
//!
//! The detector is generic over [`CorrelationStore`], so the paper-scale
//! paths keep the dense [`CorrelationMatrix`] (the default type parameter —
//! existing call sites compile unchanged and stay bit-identical, since the
//! trait's `delta`/`merge` are the same code as the free functions) while
//! production-scale monitors run the identical detection logic over
//! [`SparseCorrelation`](acorr_track::SparseCorrelation) windows.
//!
//! Thresholds are carried in parts-per-million so detection is a pure
//! integer comparison on a deterministically rounded delta: the same event
//! stream always yields the same shifts.

use acorr_track::{AgedStore, CorrelationMatrix, CorrelationStore};

/// Default firing threshold: delta ≥ 0.35 (see `has_shifted`'s guidance
/// that structural rotations land well above 0.3).
pub const DEFAULT_THRESHOLD_PPM: u64 = 350_000;
/// Default re-arm threshold: delta ≤ 0.15 means the pattern has settled.
pub const DEFAULT_REARM_PPM: u64 = 150_000;
/// Default baseline decay: each older window weighs half as much.
pub const DEFAULT_DECAY: f64 = 0.5;

/// One detected phase change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseShiftMark {
    /// Ordinal of the window whose close fired the detection (0-based).
    pub window: u64,
    /// The divergence that fired it, parts-per-million of full rotation.
    pub delta_ppm: u64,
}

/// Tumbling-window phase-change detector with hysteresis, generic over the
/// correlation backend (dense by default).
#[derive(Debug)]
pub struct PhaseDetector<C: CorrelationStore = CorrelationMatrix> {
    window: usize,
    threshold_ppm: u64,
    rearm_ppm: u64,
    aged: C::Aged,
    cur: C,
    in_window: usize,
    windows_closed: u64,
    /// Whether the baseline holds at least one full window.
    primed: bool,
    /// Hysteresis state: a firing disarms; settling re-arms.
    armed: bool,
    shifts: Vec<PhaseShiftMark>,
}

impl<C: CorrelationStore> PhaseDetector<C> {
    /// A detector over `threads` threads closing a window every `window`
    /// observations (clamped to ≥ 1), with the default thresholds.
    pub fn new(threads: usize, window: usize) -> Self {
        PhaseDetector::with_thresholds(
            threads,
            window,
            DEFAULT_THRESHOLD_PPM,
            DEFAULT_REARM_PPM,
            DEFAULT_DECAY,
        )
    }

    /// A detector with explicit firing/re-arm thresholds (ppm) and baseline
    /// decay.
    pub fn with_thresholds(
        threads: usize,
        window: usize,
        threshold_ppm: u64,
        rearm_ppm: u64,
        decay: f64,
    ) -> Self {
        PhaseDetector {
            window: window.max(1),
            threshold_ppm,
            rearm_ppm,
            aged: C::Aged::new(threads, decay),
            cur: C::zeros(threads),
            in_window: 0,
            windows_closed: 0,
            primed: false,
            armed: true,
            shifts: Vec::new(),
        }
    }

    /// Observation units folded into the currently open window so far.
    pub fn pending(&self) -> usize {
        self.in_window
    }

    /// Windows closed so far.
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Every shift detected so far, in firing order.
    pub fn shifts(&self) -> &[PhaseShiftMark] {
        &self.shifts
    }

    /// Folds one observation unit into the open window; when the window
    /// fills, closes it and returns the shift it fired, if any.
    ///
    /// # Panics
    ///
    /// Panics if `round` covers a different thread count.
    pub fn observe(&mut self, round: &C) -> Option<PhaseShiftMark> {
        self.cur.merge(round);
        self.in_window += 1;
        if self.in_window < self.window {
            return None;
        }
        self.close_window()
    }

    /// Closes the open window regardless of fill (used at end of stream for
    /// a final partial window). Empty windows are a no-op.
    pub fn flush(&mut self) -> Option<PhaseShiftMark> {
        if self.in_window == 0 {
            return None;
        }
        self.close_window()
    }

    fn close_window(&mut self) -> Option<PhaseShiftMark> {
        let ordinal = self.windows_closed;
        let mut fired = None;
        if self.primed {
            let baseline = self.aged.snapshot();
            let delta = baseline.delta(&self.cur);
            let ppm = (delta * 1_000_000.0).round() as u64;
            if self.armed && ppm >= self.threshold_ppm {
                let mark = PhaseShiftMark {
                    window: ordinal,
                    delta_ppm: ppm,
                };
                self.shifts.push(mark);
                self.armed = false;
                fired = Some(mark);
            } else if !self.armed && ppm <= self.rearm_ppm {
                self.armed = true;
            }
        }
        self.aged.observe(&self.cur);
        self.primed = true;
        self.cur = C::zeros(self.cur.num_threads());
        self.in_window = 0;
        self.windows_closed += 1;
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acorr_track::SparseCorrelation;

    /// A store with neighbor pairs sharing, rotated by `offset`.
    fn pattern_in<C: CorrelationStore>(threads: usize, offset: usize) -> C {
        let mut m = C::zeros(threads);
        for t in (0..threads - 1).step_by(2) {
            let a = (t + offset) % threads;
            let b = (t + 1 + offset) % threads;
            if a != b {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                m.set(lo, hi, 10);
            }
        }
        m
    }

    fn pattern(threads: usize, offset: usize) -> CorrelationMatrix {
        pattern_in(threads, offset)
    }

    #[test]
    fn stable_pattern_never_fires() {
        let mut d = PhaseDetector::new(8, 4);
        for _ in 0..40 {
            assert!(d.observe(&pattern(8, 0)).is_none());
        }
        assert!(d.shifts().is_empty());
        assert_eq!(d.windows_closed(), 10);
    }

    #[test]
    fn rotation_fires_within_one_window() {
        let mut d = PhaseDetector::new(8, 4);
        // Three stable windows build the baseline.
        for _ in 0..12 {
            assert!(d.observe(&pattern(8, 0)).is_none());
        }
        // The pattern rotates; the window containing the shift fires.
        let mut fired = None;
        for _ in 0..4 {
            if let Some(mark) = d.observe(&pattern(8, 1)) {
                fired = Some(mark);
            }
        }
        let mark = fired.expect("rotation detected");
        assert_eq!(mark.window, 3, "fired at the first post-shift window");
        assert!(mark.delta_ppm >= DEFAULT_THRESHOLD_PPM);
    }

    #[test]
    fn hysteresis_fires_once_per_sustained_phase() {
        let mut d = PhaseDetector::new(8, 2);
        for _ in 0..6 {
            d.observe(&pattern(8, 0));
        }
        // New phase persists for many windows: exactly one firing until the
        // baseline absorbs it and the detector re-arms.
        let mut firings = 0;
        for _ in 0..20 {
            if d.observe(&pattern(8, 1)).is_some() {
                firings += 1;
            }
        }
        assert_eq!(firings, 1);
        // Once re-armed, a second rotation fires again.
        let mut second = 0;
        for _ in 0..20 {
            if d.observe(&pattern(8, 2)).is_some() {
                second += 1;
            }
        }
        assert_eq!(second, 1);
    }

    #[test]
    fn flush_closes_a_partial_window() {
        let mut d = PhaseDetector::new(8, 100);
        for _ in 0..3 {
            d.observe(&pattern(8, 0));
        }
        assert_eq!(d.pending(), 3);
        assert!(d.flush().is_none());
        assert_eq!(d.pending(), 0);
        assert_eq!(d.windows_closed(), 1);
        // A rotated partial window against the primed baseline fires.
        for _ in 0..3 {
            d.observe(&pattern(8, 1));
        }
        assert!(d.flush().is_some());
    }

    #[test]
    fn sparse_and_dense_backends_fire_identical_shifts() {
        // The paper's full-size thread count: the dense path is the pinned
        // reference; the sparse backend must reproduce every mark exactly
        // (same windows, same delta ppm) over a multi-phase stream.
        let threads = 64;
        let mut dense = PhaseDetector::<CorrelationMatrix>::new(threads, 4);
        let mut sparse = PhaseDetector::<SparseCorrelation>::new(threads, 4);
        for i in 0..96 {
            let offset = (i / 24) % 3; // three sustained phases
            let d = dense.observe(&pattern_in(threads, offset));
            let s = sparse.observe(&pattern_in(threads, offset));
            assert_eq!(d, s, "observation {i} diverged");
        }
        assert_eq!(dense.flush(), sparse.flush());
        assert_eq!(dense.shifts(), sparse.shifts());
        assert_eq!(dense.windows_closed(), sparse.windows_closed());
        assert!(!dense.shifts().is_empty(), "phases must actually fire");
    }

    #[test]
    fn sparse_store_rearms_and_refires_across_three_rotations() {
        // Regression: hysteresis re-arm on the sparse backend used to be
        // exercised only indirectly, at 64 threads, inside the
        // dense/sparse equivalence sweep. Drive the fire → re-arm → fire
        // cycle directly on `SparseCorrelation` at a small thread count:
        // three scripted affinity rotations, each sustained long enough
        // (six windows, decay 0.5 ⇒ residual delta ≤ 0.15 after three
        // stable windows) for the detector to settle and re-arm before
        // the next rotation hits.
        let threads = 16;
        let mut d = PhaseDetector::<SparseCorrelation>::new(threads, 2);
        for _ in 0..12 {
            assert!(d.observe(&pattern_in(threads, 0)).is_none(), "baseline");
        }
        let mut fired_windows = Vec::new();
        for offset in [1usize, 2, 3] {
            let mut fired_this_phase = 0;
            for _ in 0..12 {
                if let Some(mark) = d.observe(&pattern_in::<SparseCorrelation>(threads, offset)) {
                    fired_this_phase += 1;
                    fired_windows.push(mark.window);
                }
            }
            assert_eq!(
                fired_this_phase, 1,
                "rotation to offset {offset} fires exactly once"
            );
        }
        assert_eq!(fired_windows.len(), 3, "fired, re-armed, fired again");
        assert!(
            fired_windows.windows(2).all(|w| w[0] < w[1]),
            "marks arrive in window order"
        );
        assert_eq!(d.shifts().len(), 3);
    }

    #[test]
    fn detection_is_deterministic() {
        let run = || {
            let mut d = PhaseDetector::new(8, 4);
            for i in 0..32 {
                let offset = usize::from(i >= 16);
                d.observe(&pattern(8, offset));
            }
            d.shifts().to_vec()
        };
        assert_eq!(run(), run());
    }
}
