//! Windowed correlation phase-change detection.
//!
//! ROADMAP's online re-mapping trigger needs to know *when* an
//! application's sharing pattern shifts. This module folds a stream of
//! per-unit [`CorrelationMatrix`] observations (one per tracked iteration
//! or per barrier interval) into tumbling windows, compares each closed
//! window against an exponentially aged baseline of the preceding windows
//! ([`AgedCorrelation`], §7's aging), and fires a [`PhaseShiftMark`] when
//! the normalized divergence ([`correlation_delta`]) crosses a threshold —
//! with hysteresis, so a sustained new phase fires once instead of every
//! window.
//!
//! Thresholds are carried in parts-per-million so detection is a pure
//! integer comparison on a deterministically rounded delta: the same event
//! stream always yields the same shifts.

use acorr_track::{correlation_delta, AgedCorrelation, CorrelationMatrix};

/// Default firing threshold: delta ≥ 0.35 (see `has_shifted`'s guidance
/// that structural rotations land well above 0.3).
pub const DEFAULT_THRESHOLD_PPM: u64 = 350_000;
/// Default re-arm threshold: delta ≤ 0.15 means the pattern has settled.
pub const DEFAULT_REARM_PPM: u64 = 150_000;
/// Default baseline decay: each older window weighs half as much.
pub const DEFAULT_DECAY: f64 = 0.5;

/// One detected phase change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseShiftMark {
    /// Ordinal of the window whose close fired the detection (0-based).
    pub window: u64,
    /// The divergence that fired it, parts-per-million of full rotation.
    pub delta_ppm: u64,
}

/// Tumbling-window phase-change detector with hysteresis.
#[derive(Debug)]
pub struct PhaseDetector {
    window: usize,
    threshold_ppm: u64,
    rearm_ppm: u64,
    aged: AgedCorrelation,
    cur: CorrelationMatrix,
    in_window: usize,
    windows_closed: u64,
    /// Whether the baseline holds at least one full window.
    primed: bool,
    /// Hysteresis state: a firing disarms; settling re-arms.
    armed: bool,
    shifts: Vec<PhaseShiftMark>,
}

impl PhaseDetector {
    /// A detector over `threads` threads closing a window every `window`
    /// observations (clamped to ≥ 1), with the default thresholds.
    pub fn new(threads: usize, window: usize) -> Self {
        PhaseDetector::with_thresholds(
            threads,
            window,
            DEFAULT_THRESHOLD_PPM,
            DEFAULT_REARM_PPM,
            DEFAULT_DECAY,
        )
    }

    /// A detector with explicit firing/re-arm thresholds (ppm) and baseline
    /// decay.
    pub fn with_thresholds(
        threads: usize,
        window: usize,
        threshold_ppm: u64,
        rearm_ppm: u64,
        decay: f64,
    ) -> Self {
        PhaseDetector {
            window: window.max(1),
            threshold_ppm,
            rearm_ppm,
            aged: AgedCorrelation::new(threads, decay),
            cur: CorrelationMatrix::zeros(threads),
            in_window: 0,
            windows_closed: 0,
            primed: false,
            armed: true,
            shifts: Vec::new(),
        }
    }

    /// Observation units folded into the currently open window so far.
    pub fn pending(&self) -> usize {
        self.in_window
    }

    /// Windows closed so far.
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Every shift detected so far, in firing order.
    pub fn shifts(&self) -> &[PhaseShiftMark] {
        &self.shifts
    }

    /// Folds one observation unit into the open window; when the window
    /// fills, closes it and returns the shift it fired, if any.
    ///
    /// # Panics
    ///
    /// Panics if `round` covers a different thread count.
    pub fn observe(&mut self, round: &CorrelationMatrix) -> Option<PhaseShiftMark> {
        self.cur.merge(round);
        self.in_window += 1;
        if self.in_window < self.window {
            return None;
        }
        self.close_window()
    }

    /// Closes the open window regardless of fill (used at end of stream for
    /// a final partial window). Empty windows are a no-op.
    pub fn flush(&mut self) -> Option<PhaseShiftMark> {
        if self.in_window == 0 {
            return None;
        }
        self.close_window()
    }

    fn close_window(&mut self) -> Option<PhaseShiftMark> {
        let ordinal = self.windows_closed;
        let mut fired = None;
        if self.primed {
            let baseline = self.aged.snapshot();
            let delta = correlation_delta(&baseline, &self.cur);
            let ppm = (delta * 1_000_000.0).round() as u64;
            if self.armed && ppm >= self.threshold_ppm {
                let mark = PhaseShiftMark {
                    window: ordinal,
                    delta_ppm: ppm,
                };
                self.shifts.push(mark);
                self.armed = false;
                fired = Some(mark);
            } else if !self.armed && ppm <= self.rearm_ppm {
                self.armed = true;
            }
        }
        self.aged.observe(&self.cur);
        self.primed = true;
        self.cur = CorrelationMatrix::zeros(self.cur.num_threads());
        self.in_window = 0;
        self.windows_closed += 1;
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A matrix with neighbor pairs sharing, rotated by `offset`.
    fn pattern(threads: usize, offset: usize) -> CorrelationMatrix {
        let mut m = CorrelationMatrix::zeros(threads);
        for t in (0..threads - 1).step_by(2) {
            let a = (t + offset) % threads;
            let b = (t + 1 + offset) % threads;
            if a != b {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                m.set(lo, hi, 10);
            }
        }
        m
    }

    #[test]
    fn stable_pattern_never_fires() {
        let mut d = PhaseDetector::new(8, 4);
        for _ in 0..40 {
            assert!(d.observe(&pattern(8, 0)).is_none());
        }
        assert!(d.shifts().is_empty());
        assert_eq!(d.windows_closed(), 10);
    }

    #[test]
    fn rotation_fires_within_one_window() {
        let mut d = PhaseDetector::new(8, 4);
        // Three stable windows build the baseline.
        for _ in 0..12 {
            assert!(d.observe(&pattern(8, 0)).is_none());
        }
        // The pattern rotates; the window containing the shift fires.
        let mut fired = None;
        for _ in 0..4 {
            if let Some(mark) = d.observe(&pattern(8, 1)) {
                fired = Some(mark);
            }
        }
        let mark = fired.expect("rotation detected");
        assert_eq!(mark.window, 3, "fired at the first post-shift window");
        assert!(mark.delta_ppm >= DEFAULT_THRESHOLD_PPM);
    }

    #[test]
    fn hysteresis_fires_once_per_sustained_phase() {
        let mut d = PhaseDetector::new(8, 2);
        for _ in 0..6 {
            d.observe(&pattern(8, 0));
        }
        // New phase persists for many windows: exactly one firing until the
        // baseline absorbs it and the detector re-arms.
        let mut firings = 0;
        for _ in 0..20 {
            if d.observe(&pattern(8, 1)).is_some() {
                firings += 1;
            }
        }
        assert_eq!(firings, 1);
        // Once re-armed, a second rotation fires again.
        let mut second = 0;
        for _ in 0..20 {
            if d.observe(&pattern(8, 2)).is_some() {
                second += 1;
            }
        }
        assert_eq!(second, 1);
    }

    #[test]
    fn flush_closes_a_partial_window() {
        let mut d = PhaseDetector::new(8, 100);
        for _ in 0..3 {
            d.observe(&pattern(8, 0));
        }
        assert_eq!(d.pending(), 3);
        assert!(d.flush().is_none());
        assert_eq!(d.pending(), 0);
        assert_eq!(d.windows_closed(), 1);
        // A rotated partial window against the primed baseline fires.
        for _ in 0..3 {
            d.observe(&pattern(8, 1));
        }
        assert!(d.flush().is_some());
    }

    #[test]
    fn detection_is_deterministic() {
        let run = || {
            let mut d = PhaseDetector::new(8, 4);
            for i in 0..32 {
                let offset = usize::from(i >= 16);
                d.observe(&pattern(8, offset));
            }
            d.shifts().to_vec()
        };
        assert_eq!(run(), run());
    }
}
