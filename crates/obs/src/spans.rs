//! Span aggregation: folds the engine's `SpanBegin`/`SpanEnd` profiling
//! brackets into per-phase totals.
//!
//! The engine emits one begin/end pair per profiled phase occurrence (twin
//! create, diff build, fetch, apply, lock grant, barrier close), matched by
//! a run-unique ordinal. [`SpanProfile`] pairs them back up and accumulates
//! count, total and maximum duration per phase — the "where did the time
//! go" half of the analytics report.

use std::collections::BTreeMap;

/// Aggregated durations for one span phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTotals {
    /// The phase name (`SpanPhase::name` on the engine side).
    pub phase: String,
    /// Completed spans observed.
    pub count: u64,
    /// Sum of span durations, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

/// Pairs span begin/end events by ordinal and accumulates per-phase totals.
#[derive(Debug, Default)]
pub struct SpanProfile {
    /// Spans begun but not yet ended: ordinal → (phase, begin timestamp).
    open: BTreeMap<u64, (String, u64)>,
    /// Phase → (count, total, max).
    totals: BTreeMap<String, (u64, u64, u64)>,
}

impl SpanProfile {
    /// An empty profile.
    pub fn new() -> Self {
        SpanProfile::default()
    }

    /// Records a span begin at `ts_ns`.
    pub fn begin(&mut self, id: u64, phase: &str, ts_ns: u64) {
        self.open.insert(id, (phase.to_string(), ts_ns));
    }

    /// Records a span end at `ts_ns`. Ends without a matching begin are
    /// ignored (a truncated log loses the pair, not the pass).
    pub fn end(&mut self, id: u64, ts_ns: u64) {
        if let Some((phase, begin)) = self.open.remove(&id) {
            let dur = ts_ns.saturating_sub(begin);
            let entry = self.totals.entry(phase).or_insert((0, 0, 0));
            entry.0 += 1;
            entry.1 += dur;
            entry.2 = entry.2.max(dur);
        }
    }

    /// Spans begun but never ended (a well-formed log leaves none).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Per-phase totals, sorted by phase name for deterministic output.
    pub fn totals(&self) -> Vec<SpanTotals> {
        self.totals
            .iter()
            .map(|(phase, &(count, total_ns, max_ns))| SpanTotals {
                phase: phase.clone(),
                count,
                total_ns,
                max_ns,
            })
            .collect()
    }

    /// CSV rendering: `phase,count,total_ns,max_ns`, one row per phase.
    pub fn csv(&self) -> String {
        let mut out = String::from("phase,count,total_ns,max_ns\n");
        for t in self.totals() {
            out.push_str(&format!(
                "{},{},{},{}\n",
                t.phase, t.count, t.total_ns, t.max_ns
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_spans_and_accumulates_totals() {
        let mut p = SpanProfile::new();
        p.begin(0, "fetch", 100);
        p.begin(1, "apply", 150);
        p.end(1, 180);
        p.end(0, 400);
        p.begin(2, "fetch", 500);
        p.end(2, 600);
        let totals = p.totals();
        assert_eq!(totals.len(), 2);
        // Sorted by phase name: apply before fetch.
        assert_eq!(totals[0].phase, "apply");
        assert_eq!(totals[0].count, 1);
        assert_eq!(totals[0].total_ns, 30);
        assert_eq!(totals[1].phase, "fetch");
        assert_eq!(totals[1].count, 2);
        assert_eq!(totals[1].total_ns, 400);
        assert_eq!(totals[1].max_ns, 300);
        assert_eq!(p.open_count(), 0);
    }

    #[test]
    fn unmatched_ends_are_ignored() {
        let mut p = SpanProfile::new();
        p.end(9, 100);
        assert!(p.totals().is_empty());
        p.begin(3, "lock_grant", 50);
        assert_eq!(p.open_count(), 1);
    }

    #[test]
    fn csv_is_deterministic() {
        let mut p = SpanProfile::new();
        p.begin(0, "twin_create", 10);
        p.end(0, 25);
        assert_eq!(
            p.csv(),
            "phase,count,total_ns,max_ns\ntwin_create,1,15,15\n"
        );
    }
}
