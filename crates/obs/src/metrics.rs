//! Metrics: per-barrier-interval time series and log2-bucketed latency
//! histograms, exportable as CSV.

use crate::json::iter_stats_json;
use acorr_dsm::IterStats;
use acorr_sim::{SimDuration, SimTime};
use std::fmt::Write as _;

/// A histogram with power-of-two bucket boundaries.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` nanoseconds; bucket 0
/// additionally absorbs zero. With 64 buckets every `u64` nanosecond value
/// has a home, so recording never saturates or clips: a 0-tick sample lands
/// in bucket 0 alongside 1 ns, and a `u64::MAX`-tick sample lands in
/// bucket 63, whose exclusive upper bound `2^64` is unrepresentable and is
/// deliberately reported as `u64::MAX` in [`Log2Histogram::rows`] — the
/// terminal bucket's bound saturates, never the counts.
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u128,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram::default()
    }

    /// Bucket index for a duration: `floor(log2(ns))`, with 0 ns in
    /// bucket 0.
    pub fn bucket_of(d: SimDuration) -> usize {
        let ns = d.as_nanos();
        if ns == 0 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.buckets[Self::bucket_of(d)] += 1;
        self.count += 1;
        self.sum_ns += u128::from(d.as_nanos());
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, in nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Occupied `(bucket_index, lo_ns, hi_ns, count)` rows, ascending.
    /// `hi_ns` is exclusive; the last bucket reports `u64::MAX`.
    pub fn rows(&self) -> Vec<(usize, u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| {
                let lo = if i == 0 { 0 } else { 1u64 << i };
                let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
                (i, lo, hi, n)
            })
            .collect()
    }
}

/// One sampled barrier interval.
#[derive(Debug, Clone)]
pub struct IntervalSample {
    /// Simulated release time of the closing barrier.
    pub at: SimTime,
    /// Run-global barrier ordinal.
    pub barrier: u64,
    /// Counter deltas accumulated over the interval.
    pub delta: IterStats,
}

/// Collects interval samples and latency histograms for one run.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    intervals: Vec<IntervalSample>,
    fetch: Log2Histogram,
    lock: Log2Histogram,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Records one barrier-interval delta.
    pub fn record_interval(&mut self, at: SimTime, barrier: u64, delta: &IterStats) {
        self.intervals.push(IntervalSample {
            at,
            barrier,
            delta: *delta,
        });
    }

    /// Records one remote-fetch latency sample.
    pub fn record_fetch(&mut self, latency: SimDuration) {
        self.fetch.record(latency);
    }

    /// Records one lock-grant latency sample.
    pub fn record_lock(&mut self, latency: SimDuration) {
        self.lock.record(latency);
    }

    /// The sampled intervals, in barrier order.
    pub fn intervals(&self) -> &[IntervalSample] {
        &self.intervals
    }

    /// The remote-fetch latency histogram.
    pub fn fetch_histogram(&self) -> &Log2Histogram {
        &self.fetch
    }

    /// The lock-grant latency histogram.
    pub fn lock_histogram(&self) -> &Log2Histogram {
        &self.lock
    }

    /// Renders the interval time series as CSV, one row per barrier. The
    /// columns are the headline per-interval deltas (the quantities the
    /// paper's tables aggregate), plus total/retransmitted network bytes.
    pub fn timeseries_csv(&self) -> String {
        let mut out = String::from(
            "barrier,at_ns,elapsed_ns,stall_ns,remote_misses,tracking_faults,\
             diffs_created,diff_bytes,lock_acquires,retries,net_bytes,retrans_bytes\n",
        );
        for s in &self.intervals {
            let d = &s.delta;
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{}",
                s.barrier,
                s.at.as_nanos(),
                d.elapsed.as_nanos(),
                d.stall.as_nanos(),
                d.remote_misses,
                d.tracking_faults,
                d.diffs_created,
                d.diff_bytes_created,
                d.lock_acquires,
                d.retries,
                d.net.total_bytes(),
                d.net.total_retrans_bytes(),
            );
        }
        out
    }

    /// Renders both latency histograms as CSV: one row per occupied bucket,
    /// tagged by histogram name (`fetch` / `lock`), with inclusive lower
    /// and exclusive upper bucket bounds in nanoseconds.
    pub fn histogram_csv(&self) -> String {
        let mut out = String::from("histogram,bucket,lo_ns,hi_ns,count\n");
        for (name, hist) in [("fetch", &self.fetch), ("lock", &self.lock)] {
            for (i, lo, hi, n) in hist.rows() {
                let _ = writeln!(out, "{name},{i},{lo},{hi},{n}");
            }
        }
        out
    }

    /// Renders the interval samples as a JSON array (used by the JSONL and
    /// debugging paths; each element embeds the full canonical
    /// [`IterStats`] encoding).
    pub fn intervals_json(&self) -> String {
        let mut out = String::from("[");
        for (idx, s) in self.intervals.iter().enumerate() {
            if idx > 0 {
                out.push(',');
            }
            let mut obj = crate::json::Obj::new();
            obj.u64("barrier", s.barrier)
                .u64("at_ns", s.at.as_nanos())
                .raw("delta", &iter_stats_json(&s.delta));
            out.push_str(&obj.finish());
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Log2Histogram::bucket_of(SimDuration::ZERO), 0);
        assert_eq!(Log2Histogram::bucket_of(SimDuration::from_nanos(1)), 0);
        assert_eq!(Log2Histogram::bucket_of(SimDuration::from_nanos(2)), 1);
        assert_eq!(Log2Histogram::bucket_of(SimDuration::from_nanos(3)), 1);
        assert_eq!(Log2Histogram::bucket_of(SimDuration::from_nanos(4)), 2);
        assert_eq!(Log2Histogram::bucket_of(SimDuration::from_nanos(1023)), 9);
        assert_eq!(Log2Histogram::bucket_of(SimDuration::from_nanos(1024)), 10);
        assert_eq!(
            Log2Histogram::bucket_of(SimDuration::from_nanos(u64::MAX)),
            63
        );
    }

    #[test]
    fn edge_samples_land_in_terminal_buckets() {
        // A 0-tick sample shares bucket 0 with 1 ns; a u64::MAX-tick sample
        // fills bucket 63, whose reported upper bound saturates to u64::MAX
        // (2^64 is unrepresentable) while its count stays exact.
        let mut h = Log2Histogram::new();
        h.record(SimDuration::ZERO);
        h.record(SimDuration::from_nanos(1));
        h.record(SimDuration::from_nanos(u64::MAX));
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_ns(), 1 + u128::from(u64::MAX));
        assert_eq!(h.rows(), vec![(0, 0, 2, 2), (63, 1 << 63, u64::MAX, 1)]);
        // The CSV export carries the same saturated bound.
        let mut m = MetricsRegistry::new();
        m.record_fetch(SimDuration::ZERO);
        m.record_fetch(SimDuration::from_nanos(u64::MAX));
        let csv = m.histogram_csv();
        assert!(csv.contains("fetch,0,0,2,1\n"), "{csv}");
        assert!(
            csv.contains(&format!("fetch,63,{},{},1\n", 1u64 << 63, u64::MAX)),
            "{csv}"
        );
    }

    #[test]
    fn histogram_rows_and_moments() {
        let mut h = Log2Histogram::new();
        h.record(SimDuration::from_nanos(5));
        h.record(SimDuration::from_nanos(6));
        h.record(SimDuration::from_nanos(100));
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_ns(), 111);
        assert!((h.mean_ns() - 37.0).abs() < 1e-9);
        let rows = h.rows();
        assert_eq!(rows, vec![(2, 4, 8, 2), (6, 64, 128, 1)]);
    }

    #[test]
    fn csv_exports_have_headers_and_rows() {
        let mut m = MetricsRegistry::new();
        let mut delta = IterStats::new();
        delta.remote_misses = 7;
        m.record_interval(SimTime::from_nanos(1000), 0, &delta);
        m.record_fetch(SimDuration::from_micros(3));
        m.record_lock(SimDuration::from_nanos(10));
        let ts = m.timeseries_csv();
        assert!(ts.starts_with("barrier,at_ns"));
        assert_eq!(ts.lines().count(), 2);
        assert!(ts.lines().nth(1).unwrap().starts_with("0,1000,"));
        let hg = m.histogram_csv();
        assert!(hg.starts_with("histogram,bucket"));
        assert!(hg.contains("fetch,"));
        assert!(hg.contains("lock,"));
        let v = crate::json::parse(&m.intervals_json()).unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(
            arr[0]
                .get("delta")
                .unwrap()
                .get("remote_misses")
                .unwrap()
                .as_u64(),
            Some(7)
        );
    }
}
