//! Run manifests: a small JSON record capturing everything needed to
//! reproduce a result file — run parameters (config, seed, fault plan,
//! protocol, thread/node counts), the source revision, and a digest of the
//! final statistics so a replay can be checked bit-for-bit.

use crate::json::{self, Obj, Value};
use acorr_dsm::IterStats;

/// Manifest schema identifier; bump on incompatible changes.
pub const SCHEMA: &str = "acorr-obs/1";

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Digest of a final [`IterStats`]: FNV-1a over its canonical JSON
/// encoding, formatted as `fnv1a:<16 hex digits>`. Two runs are
/// bit-identical in every counted quantity iff their digests match.
pub fn stats_digest(stats: &IterStats) -> String {
    format!(
        "fnv1a:{:016x}",
        fnv1a(json::iter_stats_json(stats).as_bytes())
    )
}

/// Digest of arbitrary artifact bytes, same format as [`stats_digest`].
pub fn bytes_digest(bytes: &[u8]) -> String {
    format!("fnv1a:{:016x}", fnv1a(bytes))
}

/// Best-effort `git describe --always --dirty` of the working tree;
/// `"unknown"` when git or the repository is unavailable. Metadata only —
/// never used in any simulated computation.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// A reproducibility record for one run or emitted artifact.
///
/// The run parameters live in `params`, an ordered string-to-string map,
/// so every producer (CLI subcommands, bench bins) can record exactly the
/// knobs it exposes without the manifest schema enumerating them; the
/// `report` replay path reads the keys it understands and surfaces the
/// rest verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// The producing tool, e.g. `acorr run` or a bench bin name.
    pub tool: String,
    /// Source revision ([`git_describe`]).
    pub git: String,
    /// Run parameters, in emission order.
    pub params: Vec<(String, String)>,
    /// Digest of the final statistics or artifact bytes
    /// ([`stats_digest`] / [`bytes_digest`]).
    pub digest: String,
}

impl RunManifest {
    /// Starts a manifest for `tool` with the current revision and no
    /// parameters.
    pub fn new(tool: &str) -> Self {
        RunManifest {
            schema: SCHEMA.to_string(),
            tool: tool.to_string(),
            git: git_describe(),
            params: Vec::new(),
            digest: String::new(),
        }
    }

    /// Appends (or replaces) one parameter.
    pub fn param(mut self, key: &str, value: &str) -> Self {
        if let Some(slot) = self.params.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value.to_string();
        } else {
            self.params.push((key.to_string(), value.to_string()));
        }
        self
    }

    /// Looks up a parameter.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Sets the final digest.
    pub fn with_digest(mut self, digest: String) -> Self {
        self.digest = digest;
        self
    }

    /// Renders the manifest as a JSON document (with trailing newline).
    pub fn to_json(&self) -> String {
        let mut params = Obj::new();
        for (k, v) in &self.params {
            params.str(k, v);
        }
        let mut obj = Obj::new();
        obj.str("schema", &self.schema)
            .str("tool", &self.tool)
            .str("git", &self.git)
            .raw("params", &params.finish())
            .str("digest", &self.digest);
        let mut out = obj.finish();
        out.push('\n');
        out
    }

    /// Parses a manifest document produced by [`RunManifest::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description when the document is not valid JSON, is
    /// missing a required member, or declares an unknown schema.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| format!("manifest is not valid JSON: {e}"))?;
        let member = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest is missing string member \"{key}\""))
        };
        let schema = member("schema")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported manifest schema \"{schema}\" (expected \"{SCHEMA}\")"
            ));
        }
        let params = match v.get("params") {
            Some(Value::Obj(members)) => members
                .iter()
                .map(|(k, val)| {
                    val.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("manifest param \"{k}\" is not a string"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("manifest is missing object member \"params\"".into()),
        };
        Ok(RunManifest {
            schema,
            tool: member("tool")?,
            git: member("git")?,
            params,
            digest: member("digest")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn stats_digest_is_stable_and_sensitive() {
        let a = IterStats::new();
        let mut b = IterStats::new();
        assert_eq!(stats_digest(&a), stats_digest(&b));
        assert!(stats_digest(&a).starts_with("fnv1a:"));
        b.remote_misses = 1;
        assert_ne!(stats_digest(&a), stats_digest(&b));
    }

    #[test]
    fn manifest_round_trips() {
        let m = RunManifest::new("acorr run")
            .param("app", "sor")
            .param("seed", "704580")
            .param("faults", "moderate")
            .with_digest("fnv1a:0123456789abcdef".into());
        let text = m.to_json();
        let back = RunManifest::from_json(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.get("app"), Some("sor"));
        assert_eq!(back.get("missing"), None);
    }

    #[test]
    fn param_replaces_existing_keys() {
        let m = RunManifest::new("t").param("k", "1").param("k", "2");
        assert_eq!(m.get("k"), Some("2"));
        assert_eq!(m.params.len(), 1);
    }

    #[test]
    fn from_json_rejects_malformed_manifests() {
        assert!(RunManifest::from_json("not json").is_err());
        assert!(RunManifest::from_json("{}").is_err());
        let wrong_schema = RunManifest {
            schema: "acorr-obs/999".into(),
            ..RunManifest::new("t")
        }
        .to_json();
        assert!(RunManifest::from_json(&wrong_schema)
            .unwrap_err()
            .contains("schema"));
        // Non-string param values are rejected.
        let bad = r#"{"schema":"acorr-obs/1","tool":"t","git":"g","params":{"x":1},"digest":"d"}"#;
        assert!(RunManifest::from_json(bad).unwrap_err().contains("param"));
    }

    #[test]
    fn git_describe_never_panics() {
        let d = git_describe();
        assert!(!d.is_empty());
    }
}
