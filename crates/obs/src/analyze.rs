//! Post-run trace analytics: attribution and critical-path decomposition
//! over a recorded `events.jsonl` stream.
//!
//! The sinks record *what happened*; this pass answers *who caused it and
//! where the time went*:
//!
//! * **Page heat** — per-page counts of remote fetches, twin (write)
//!   faults, diffs and diff bytes, and ownership transfers; sorted hottest
//!   first so the top-K report names the pages behind the cut cost.
//! * **Thread attribution** — per-thread communication footprint (remote
//!   misses, tracking faults, lock grants, migrations).
//! * **Critical path** — per barrier interval, the node whose accumulated
//!   fetch + lock wait is largest, with the wait decomposed; the slowest
//!   chain the interval's elapsed time hides.
//! * **Span totals** — aggregated engine self-profiling spans
//!   ([`crate::spans`]).
//! * **Phase shifts** — windowed correlation phase-change detection over
//!   the tracked correlation faults ([`crate::phases`]).
//!
//! Everything is computed with sorted maps and integer arithmetic in event
//! order, so a fixed event stream produces byte-identical artifacts on
//! every run at any `--jobs` value.

use crate::json::parse;
use crate::phases::{PhaseDetector, PhaseShiftMark};
use crate::spans::{SpanProfile, SpanTotals};
use acorr_mem::{AccessMatrix, PageId};
use acorr_track::CorrelationMatrix;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Default phase-detection window, in barrier intervals.
pub const DEFAULT_PHASE_WINDOW: usize = 4;
/// Default number of pages the human-readable report names.
pub const DEFAULT_TOP_K: usize = 10;

/// Communication heat attributed to one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageHeat {
    /// The page (artifact-side `u64` encoding of [`PageId`]).
    pub page: u64,
    /// Remote fetches (coherence misses) of this page.
    pub fetches: u64,
    /// Twin creations (first write of an interval).
    pub twins: u64,
    /// Diffs created from this page's twin.
    pub diffs: u64,
    /// Total diff bytes created for this page.
    pub diff_bytes: u64,
    /// Single-writer ownership transfers of this page.
    pub transfers: u64,
}

impl PageHeat {
    /// The sort key: protocol operations caused by this page.
    pub fn heat(&self) -> u64 {
        self.fetches + self.twins + self.diffs + self.transfers
    }
}

/// Communication footprint attributed to one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThreadComm {
    /// The thread.
    pub thread: u64,
    /// Remote misses this thread's accesses took.
    pub remote_misses: u64,
    /// Correlation-tracking faults this thread took.
    pub tracking_faults: u64,
    /// Lock grants to this thread.
    pub lock_grants: u64,
    /// Lock grants that crossed nodes.
    pub remote_lock_grants: u64,
    /// Times this thread migrated.
    pub migrations: u64,
}

/// Critical-path decomposition of one barrier interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalPath {
    /// Barrier index closing the interval.
    pub barrier: u64,
    /// Interval wall time (simulated), from the interval record.
    pub elapsed_ns: u64,
    /// Accumulated stall, from the interval record.
    pub stall_ns: u64,
    /// The node with the largest fetch + lock wait this interval.
    pub critical_node: u64,
    /// That node's accumulated remote-fetch wait.
    pub fetch_wait_ns: u64,
    /// That node's accumulated lock-grant wait.
    pub lock_wait_ns: u64,
}

/// The complete analytics result for one run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Per-page heat, hottest first (ties by page id).
    pub pages: Vec<PageHeat>,
    /// Per-thread attribution, by thread id.
    pub threads: Vec<ThreadComm>,
    /// Per-interval critical path, by barrier index.
    pub intervals: Vec<IntervalPath>,
    /// Aggregated self-profiling spans, by phase name.
    pub spans: Vec<SpanTotals>,
    /// Detected correlation phase shifts, in firing order.
    pub shifts: Vec<PhaseShiftMark>,
    /// CSV rendering of the span totals (kept alongside the parsed form so
    /// writers don't re-derive it).
    spans_csv: String,
}

/// One parsed event stream, split into the pieces the passes consume.
#[derive(Debug, Default)]
struct StreamState {
    pages: BTreeMap<u64, PageHeat>,
    threads: BTreeMap<u64, ThreadComm>,
    intervals: Vec<IntervalPath>,
    spans: SpanProfile,
    fetch_wait: BTreeMap<u64, u64>,
    lock_wait: BTreeMap<u64, u64>,
    /// (thread, page) tracking observations per interval; the open
    /// interval's list is last.
    tracked: Vec<Vec<(u64, u64)>>,
    max_thread: Option<u64>,
    max_page: Option<u64>,
}

impl StreamState {
    fn page(&mut self, id: u64) -> &mut PageHeat {
        self.max_page = Some(self.max_page.map_or(id, |m| m.max(id)));
        self.pages.entry(id).or_insert_with(|| PageHeat {
            page: id,
            ..PageHeat::default()
        })
    }

    fn thread(&mut self, id: u64) -> &mut ThreadComm {
        self.max_thread = Some(self.max_thread.map_or(id, |m| m.max(id)));
        self.threads.entry(id).or_insert_with(|| ThreadComm {
            thread: id,
            ..ThreadComm::default()
        })
    }

    fn open_interval(&mut self) -> &mut Vec<(u64, u64)> {
        if self.tracked.is_empty() {
            self.tracked.push(Vec::new());
        }
        self.tracked.last_mut().expect("pushed above")
    }
}

fn field_u64(v: &crate::json::Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(|f| f.as_u64())
        .ok_or_else(|| format!("missing or non-u64 member {key:?}"))
}

impl Analysis {
    /// Runs every analytics pass over an `events.jsonl` document with the
    /// default phase window.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_events(jsonl: &str) -> Result<Analysis, String> {
        Analysis::from_events_windowed(jsonl, DEFAULT_PHASE_WINDOW)
    }

    /// Runs every analytics pass, closing a phase-detection window every
    /// `window` barrier intervals.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_events_windowed(jsonl: &str, window: usize) -> Result<Analysis, String> {
        let mut st = StreamState::default();
        for (lineno, line) in jsonl.lines().enumerate() {
            let v = parse(line).map_err(|e| format!("events.jsonl line {}: {e}", lineno + 1))?;
            let ty = v
                .get("type")
                .and_then(|t| t.as_str())
                .ok_or_else(|| format!("events.jsonl line {}: no type", lineno + 1))?
                .to_string();
            Analysis::fold(&mut st, &ty, &v)
                .map_err(|e| format!("events.jsonl line {}: {e}", lineno + 1))?;
        }
        Ok(Analysis::finish(st, window))
    }

    fn fold(st: &mut StreamState, ty: &str, v: &crate::json::Value) -> Result<(), String> {
        match ty {
            "remote_miss" => {
                let page = field_u64(v, "page")?;
                let thread = field_u64(v, "thread")?;
                st.page(page).fetches += 1;
                st.thread(thread).remote_misses += 1;
            }
            "write_fault" => st.page(field_u64(v, "page")?).twins += 1,
            "diff_created" => {
                let page = field_u64(v, "page")?;
                let bytes = field_u64(v, "bytes")?;
                let heat = st.page(page);
                heat.diffs += 1;
                heat.diff_bytes += bytes;
            }
            "ownership_transfer" => st.page(field_u64(v, "page")?).transfers += 1,
            "correlation_fault" => {
                let thread = field_u64(v, "thread")?;
                let page = field_u64(v, "page")?;
                st.thread(thread).tracking_faults += 1;
                st.page(page); // widen the page universe
                st.open_interval().push((thread, page));
            }
            "lock_granted" => {
                let thread = field_u64(v, "thread")?;
                let remote = matches!(v.get("remote"), Some(crate::json::Value::Bool(true)));
                let t = st.thread(thread);
                t.lock_grants += 1;
                if remote {
                    t.remote_lock_grants += 1;
                }
            }
            "migration" => st.thread(field_u64(v, "thread")?).migrations += 1,
            "fetch_latency" => {
                let node = field_u64(v, "node")?;
                let ns = field_u64(v, "latency_ns")?;
                *st.fetch_wait.entry(node).or_insert(0) += ns;
            }
            "lock_latency" => {
                let node = field_u64(v, "node")?;
                let ns = field_u64(v, "latency_ns")?;
                *st.lock_wait.entry(node).or_insert(0) += ns;
            }
            "interval" => {
                let barrier = field_u64(v, "barrier")?;
                let delta = v.get("delta").ok_or("interval without delta")?;
                let elapsed_ns = field_u64(delta, "elapsed_ns")?;
                let stall_ns = field_u64(delta, "stall_ns")?;
                // Critical node: largest fetch + lock wait, ties to the
                // lowest node id (BTreeMap iteration order).
                let mut critical = (0u64, 0u64, 0u64); // (node, fetch, lock)
                let mut best = 0u64;
                let nodes: std::collections::BTreeSet<u64> = st
                    .fetch_wait
                    .keys()
                    .chain(st.lock_wait.keys())
                    .copied()
                    .collect();
                for node in nodes {
                    let f = st.fetch_wait.get(&node).copied().unwrap_or(0);
                    let l = st.lock_wait.get(&node).copied().unwrap_or(0);
                    if f + l > best {
                        best = f + l;
                        critical = (node, f, l);
                    }
                }
                st.intervals.push(IntervalPath {
                    barrier,
                    elapsed_ns,
                    stall_ns,
                    critical_node: critical.0,
                    fetch_wait_ns: critical.1,
                    lock_wait_ns: critical.2,
                });
                st.fetch_wait.clear();
                st.lock_wait.clear();
                // The interval closes for phase detection too.
                st.tracked.push(Vec::new());
            }
            "span_begin" => {
                let id = field_u64(v, "id")?;
                let ts = field_u64(v, "ts")?;
                let phase = v
                    .get("phase")
                    .and_then(|p| p.as_str())
                    .ok_or("span_begin without phase")?;
                st.spans.begin(id, phase, ts);
            }
            "span_end" => {
                let id = field_u64(v, "id")?;
                let ts = field_u64(v, "ts")?;
                st.spans.end(id, ts);
            }
            // Markers that carry no attribution: tolerated, not folded.
            "barrier_release" | "gc_consolidated" | "schedule_decision" | "fault_decision"
            | "node_crash" | "phase_shift" => {}
            other => return Err(format!("unknown event type {other:?}")),
        }
        Ok(())
    }

    fn finish(st: StreamState, window: usize) -> Analysis {
        let mut pages: Vec<PageHeat> = st.pages.into_values().collect();
        pages.sort_by(|a, b| b.heat().cmp(&a.heat()).then(a.page.cmp(&b.page)));
        let threads: Vec<ThreadComm> = st.threads.into_values().collect();
        // Phase detection over the tracked observations, one correlation
        // matrix per barrier interval.
        let shifts = match (st.max_thread, st.max_page) {
            (Some(mt), Some(mp)) if st.tracked.iter().any(|i| !i.is_empty()) => {
                let threads_n = mt as usize + 1;
                let pages_n = mp as usize + 1;
                let mut detector = PhaseDetector::new(threads_n, window);
                for interval in &st.tracked {
                    if interval.is_empty() {
                        continue;
                    }
                    let mut access = AccessMatrix::new(threads_n, pages_n);
                    for &(t, p) in interval {
                        if let Some(page) = PageId::from_u64(p) {
                            access.record(t as usize, page);
                        }
                    }
                    detector.observe(&CorrelationMatrix::from_access(&access));
                }
                detector.flush();
                detector.shifts().to_vec()
            }
            _ => Vec::new(),
        };
        let spans_csv = st.spans.csv();
        Analysis {
            pages,
            threads,
            intervals: st.intervals,
            spans: st.spans.totals(),
            shifts,
            spans_csv,
        }
    }

    /// CSV: `page,fetches,twins,diffs,diff_bytes,transfers,heat`, hottest
    /// page first.
    pub fn page_heat_csv(&self) -> String {
        let mut out = String::from("page,fetches,twins,diffs,diff_bytes,transfers,heat\n");
        for p in &self.pages {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                p.page,
                p.fetches,
                p.twins,
                p.diffs,
                p.diff_bytes,
                p.transfers,
                p.heat()
            ));
        }
        out
    }

    /// CSV: `thread,remote_misses,tracking_faults,lock_grants,remote_lock_grants,migrations`.
    pub fn thread_comm_csv(&self) -> String {
        let mut out = String::from(
            "thread,remote_misses,tracking_faults,lock_grants,remote_lock_grants,migrations\n",
        );
        for t in &self.threads {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                t.thread,
                t.remote_misses,
                t.tracking_faults,
                t.lock_grants,
                t.remote_lock_grants,
                t.migrations
            ));
        }
        out
    }

    /// CSV: `barrier,elapsed_ns,stall_ns,critical_node,fetch_wait_ns,lock_wait_ns`.
    pub fn critical_path_csv(&self) -> String {
        let mut out =
            String::from("barrier,elapsed_ns,stall_ns,critical_node,fetch_wait_ns,lock_wait_ns\n");
        for i in &self.intervals {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                i.barrier,
                i.elapsed_ns,
                i.stall_ns,
                i.critical_node,
                i.fetch_wait_ns,
                i.lock_wait_ns
            ));
        }
        out
    }

    /// CSV: `window,delta_ppm`, one row per detected shift.
    pub fn phases_csv(&self) -> String {
        let mut out = String::from("window,delta_ppm\n");
        for s in &self.shifts {
            out.push_str(&format!("{},{}\n", s.window, s.delta_ppm));
        }
        out
    }

    /// CSV: `phase,count,total_ns,max_ns`, one row per profiled phase.
    pub fn spans_csv(&self) -> String {
        self.spans_csv.clone()
    }

    /// The human-readable report. `digest` is the manifest's stats digest
    /// (`fnv1a:...`), echoed so the report is verifiable against the
    /// manifest; `top_k` bounds the hot-page table.
    pub fn report(&self, digest: &str, top_k: usize) -> String {
        let mut out = String::new();
        out.push_str("acorr trace analytics\n");
        out.push_str("=====================\n");
        out.push_str(&format!("stats digest: {digest}\n\n"));
        out.push_str(&format!(
            "hot pages (top {} of {}):\n",
            top_k.min(self.pages.len()),
            self.pages.len()
        ));
        out.push_str("  page    fetches  twins  diffs  diff_bytes  transfers  heat\n");
        for p in self.pages.iter().take(top_k) {
            out.push_str(&format!(
                "  {:<7} {:<8} {:<6} {:<6} {:<11} {:<10} {}\n",
                p.page,
                p.fetches,
                p.twins,
                p.diffs,
                p.diff_bytes,
                p.transfers,
                p.heat()
            ));
        }
        out.push('\n');
        out.push_str(&format!("threads attributed: {}\n", self.threads.len()));
        let busiest = self
            .threads
            .iter()
            .max_by_key(|t| (t.remote_misses, std::cmp::Reverse(t.thread)));
        if let Some(t) = busiest {
            out.push_str(&format!(
                "busiest thread: {} ({} remote misses, {} tracking faults)\n",
                t.thread, t.remote_misses, t.tracking_faults
            ));
        }
        out.push('\n');
        out.push_str(&format!(
            "barrier intervals decomposed: {}\n",
            self.intervals.len()
        ));
        let worst = self.intervals.iter().max_by_key(|i| {
            (
                i.fetch_wait_ns + i.lock_wait_ns,
                std::cmp::Reverse(i.barrier),
            )
        });
        if let Some(w) = worst {
            out.push_str(&format!(
                "worst interval: barrier {} (critical node {}, fetch wait {} ns, lock wait {} ns)\n",
                w.barrier, w.critical_node, w.fetch_wait_ns, w.lock_wait_ns
            ));
        }
        out.push('\n');
        out.push_str("span totals:\n");
        if self.spans.is_empty() {
            out.push_str("  (no spans recorded — span profiling off)\n");
        }
        for s in &self.spans {
            out.push_str(&format!(
                "  {:<14} count {:<8} total {} ns (max {} ns)\n",
                s.phase, s.count, s.total_ns, s.max_ns
            ));
        }
        out.push('\n');
        if self.shifts.is_empty() {
            out.push_str("phase shifts: none detected\n");
        } else {
            out.push_str(&format!("phase shifts: {}\n", self.shifts.len()));
            for s in &self.shifts {
                out.push_str(&format!(
                    "  window {} delta {} ppm\n",
                    s.window, s.delta_ppm
                ));
            }
        }
        out
    }

    /// Writes the analysis artifacts into `dir` (created if needed):
    /// `page_heat.csv`, `thread_comm.csv`, `critical_path.csv`,
    /// `spans.csv`, `phases.csv`, `report.txt`. Returns the paths written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &Path, report: &str) -> io::Result<Vec<PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let entries: [(&str, String); 6] = [
            ("page_heat.csv", self.page_heat_csv()),
            ("thread_comm.csv", self.thread_comm_csv()),
            ("critical_path.csv", self.critical_path_csv()),
            ("spans.csv", self.spans_csv()),
            ("phases.csv", self.phases_csv()),
            ("report.txt", report.to_string()),
        ];
        let mut written = Vec::new();
        for (name, contents) in entries {
            let path = dir.join(name);
            std::fs::write(&path, contents)?;
            written.push(path);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinks::JsonlSink;
    use acorr_dsm::trace::{Event, EventSink, SpanPhase};
    use acorr_dsm::IterStats;
    use acorr_sim::{NodeId, SimDuration, SimTime};

    fn sample_log() -> String {
        let mut sink = JsonlSink::new();
        let t = |ns| SimTime::from_nanos(ns);
        sink.record_event(
            t(10),
            &Event::RemoteMiss {
                node: NodeId(1),
                thread: 3,
                page: PageId(7),
            },
        );
        sink.record_event(
            t(11),
            &Event::RemoteMiss {
                node: NodeId(1),
                thread: 3,
                page: PageId(7),
            },
        );
        sink.record_event(
            t(12),
            &Event::WriteFault {
                node: NodeId(0),
                page: PageId(2),
            },
        );
        sink.record_event(
            t(13),
            &Event::DiffCreated {
                node: NodeId(0),
                page: PageId(2),
                bytes: 128,
            },
        );
        sink.record_event(
            t(14),
            &Event::LockGranted {
                lock: 0,
                thread: 3,
                remote: true,
            },
        );
        sink.record_fetch_latency(t(20), NodeId(1), SimDuration::from_nanos(500));
        sink.record_fetch_latency(t(21), NodeId(0), SimDuration::from_nanos(100));
        sink.record_lock_latency(t(22), NodeId(1), SimDuration::from_nanos(50));
        sink.record_event(
            t(30),
            &Event::SpanBegin {
                id: 0,
                phase: SpanPhase::Fetch,
                node: NodeId(1),
            },
        );
        sink.record_event(
            t(40),
            &Event::SpanEnd {
                id: 0,
                phase: SpanPhase::Fetch,
                node: NodeId(1),
            },
        );
        let mut delta = IterStats::new();
        delta.elapsed = SimDuration::from_nanos(1000);
        delta.stall = SimDuration::from_nanos(300);
        sink.record_interval(t(50), 0, &delta);
        sink.render()
    }

    #[test]
    fn attributes_pages_threads_and_critical_path() {
        let a = Analysis::from_events(&sample_log()).unwrap();
        // Page 7 is hottest (2 fetches beats 1 twin + 1 diff on ties by
        // heat then page id: both have heat 2, page 2 sorts first).
        assert_eq!(a.pages.len(), 2);
        assert_eq!(a.pages[0].page, 2);
        assert_eq!(a.pages[0].heat(), 2);
        assert_eq!(a.pages[0].diff_bytes, 128);
        assert_eq!(a.pages[1].page, 7);
        assert_eq!(a.pages[1].fetches, 2);
        // Thread 3 took both misses and one remote lock grant.
        assert_eq!(a.threads.len(), 1);
        assert_eq!(a.threads[0].thread, 3);
        assert_eq!(a.threads[0].remote_misses, 2);
        assert_eq!(a.threads[0].lock_grants, 1);
        assert_eq!(a.threads[0].remote_lock_grants, 1);
        // Node 1 is critical: 500 fetch + 50 lock > node 0's 100.
        assert_eq!(a.intervals.len(), 1);
        let i = &a.intervals[0];
        assert_eq!(i.barrier, 0);
        assert_eq!(i.elapsed_ns, 1000);
        assert_eq!(i.stall_ns, 300);
        assert_eq!(i.critical_node, 1);
        assert_eq!(i.fetch_wait_ns, 500);
        assert_eq!(i.lock_wait_ns, 50);
        // One completed fetch span.
        assert_eq!(a.spans.len(), 1);
        assert_eq!(a.spans[0].phase, "fetch");
        assert_eq!(a.spans[0].total_ns, 10);
    }

    #[test]
    fn csvs_are_deterministic_and_headed() {
        let log = sample_log();
        let a = Analysis::from_events(&log).unwrap();
        let b = Analysis::from_events(&log).unwrap();
        assert_eq!(a.page_heat_csv(), b.page_heat_csv());
        assert_eq!(a.critical_path_csv(), b.critical_path_csv());
        assert!(a
            .page_heat_csv()
            .starts_with("page,fetches,twins,diffs,diff_bytes,transfers,heat\n"));
        assert!(a
            .critical_path_csv()
            .starts_with("barrier,elapsed_ns,stall_ns,critical_node,fetch_wait_ns,lock_wait_ns\n"));
        assert!(a.thread_comm_csv().contains("3,2,0,1,1,0\n"));
    }

    #[test]
    fn report_carries_the_digest_line() {
        let a = Analysis::from_events(&sample_log()).unwrap();
        let report = a.report("fnv1a:deadbeef00000000", 5);
        assert!(report.contains("stats digest: fnv1a:deadbeef00000000\n"));
        assert!(report.contains("hot pages"));
        assert!(report.contains("span totals:"));
    }

    #[test]
    fn detects_a_phase_shift_in_tracked_streams() {
        // Synthesize a tracked log: intervals 0..6 pair (0,1)+(2,3);
        // intervals 6..12 pair (1,2)+(3,0) — a rotation at interval 6 with
        // window 2 ⇒ fires at window 3 (intervals 6-7).
        let mut sink = JsonlSink::new();
        let mut ns = 0u64;
        for interval in 0..12u64 {
            let pairs: [(u64, u64); 4] = if interval < 6 {
                [(0, 10), (1, 10), (2, 20), (3, 20)]
            } else {
                [(1, 30), (2, 30), (3, 40), (0, 40)]
            };
            for (thread, page) in pairs {
                ns += 1;
                sink.record_event(
                    SimTime::from_nanos(ns),
                    &Event::CorrelationFault {
                        thread: thread as usize,
                        page: PageId(page as u32),
                    },
                );
            }
            ns += 1;
            sink.record_interval(SimTime::from_nanos(ns), interval, &IterStats::new());
        }
        let a = Analysis::from_events_windowed(&sink.render(), 2).unwrap();
        assert_eq!(a.shifts.len(), 1, "{:?}", a.shifts);
        assert_eq!(a.shifts[0].window, 3);
        assert!(a.phases_csv().contains("3,"));
    }

    #[test]
    fn untracked_streams_detect_nothing() {
        let a = Analysis::from_events(&sample_log()).unwrap();
        assert!(a.shifts.is_empty());
        assert_eq!(a.phases_csv(), "window,delta_ppm\n");
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        let err = Analysis::from_events("{\"ts\":1,\"type\":\"interval\"}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = Analysis::from_events("not json").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn write_to_emits_all_artifacts() {
        let dir = std::env::temp_dir().join(format!("acorr-analyze-test-{}", std::process::id()));
        let a = Analysis::from_events(&sample_log()).unwrap();
        let written = a.write_to(&dir, &a.report("fnv1a:0", 3)).unwrap();
        let names: Vec<String> = written
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec![
                "page_heat.csv",
                "thread_comm.csv",
                "critical_path.csv",
                "spans.csv",
                "phases.csv",
                "report.txt"
            ]
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
