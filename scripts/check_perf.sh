#!/usr/bin/env sh
# Perf regression gate: re-measures the engine hot paths and fails when any
# bin's hot-loop speedup drops below the 5x floor or regresses more than
# 10% relative to the committed baseline (results/BENCH_pr6.json).
#
# The comparison is against the *speedup ratio*, not absolute wall time, so
# the gate is machine-independent: reference and optimized paths are timed
# on the same host in the same process.
#
# Running the bench bin rewrites results/BENCH_pr6.json with the fresh
# numbers, so the committed baseline is copied aside first and the gate
# compares against the copy.
set -eu

cd "$(dirname "$0")/.."

baseline="results/BENCH_pr6.json"
if [ ! -f "$baseline" ]; then
    echo "error: no committed baseline at $baseline" >&2
    echo "hint: run 'cargo run --release -p acorr-bench --bin perf6' and commit the artifact" >&2
    exit 2
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
cp "$baseline" "$tmp"

echo "==> perf6 --baseline $baseline (copied aside)"
cargo run --release -p acorr-bench --bin perf6 -- --baseline "$tmp"
