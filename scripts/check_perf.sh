#!/usr/bin/env sh
# Perf regression gate: re-measures the engine hot paths and fails when any
# bin's hot-loop speedup drops below the 5x floor or regresses more than
# 10% relative to the committed baseline (results/BENCH_pr6.json), then
# re-runs the production-scale placement trajectory (perf9) whose gate pins
# the scale-point mapping digests and cut costs byte-for-byte against
# results/BENCH_pr9.json and holds the multilevel-vs-min_cost speedup floor.
#
# The timing comparisons are against *speedup ratios*, not absolute wall
# time, so the gates are machine-independent: reference and optimized paths
# are timed on the same host in the same process. The perf9 digest/cut
# comparison is exact — those numbers do not depend on the machine at all.
#
# Running a bench bin rewrites its results/BENCH_*.json with the fresh
# numbers, so each committed baseline is copied aside first and the gate
# compares against the copy.
set -eu

cd "$(dirname "$0")/.."

for pr in 6 9; do
    baseline="results/BENCH_pr$pr.json"
    if [ ! -f "$baseline" ]; then
        echo "error: no committed baseline at $baseline" >&2
        echo "hint: run 'cargo run --release -p acorr-bench --bin perf$pr' and commit the artifact" >&2
        exit 2
    fi
done

tmp="$(mktemp)"
tmp9="$(mktemp)"
trap 'rm -f "$tmp" "$tmp9"' EXIT
cp results/BENCH_pr6.json "$tmp"
cp results/BENCH_pr9.json "$tmp9"

echo "==> perf6 --baseline results/BENCH_pr6.json (copied aside)"
cargo run --release -p acorr-bench --bin perf6 -- --baseline "$tmp"

echo "==> perf9 --baseline results/BENCH_pr9.json (copied aside)"
cargo run --release -p acorr-bench --bin perf9 -- --baseline "$tmp9"

# Companion-manifest audit: every regenerated artifact gets a
# results/manifests/<name>.json stamp (see acorr_bench::write_artifact),
# but artifacts committed before the stamping convention — e.g. the PR-1
# perf trajectory results/perf_pr1.csv — have none. Tolerate those and say
# so, rather than silently skipping them in digest comparisons.
echo "==> companion-manifest audit (results/)"
legacy=0
for artifact in results/*; do
    [ -f "$artifact" ] || continue
    name="$(basename "$artifact")"
    [ "$name" = "README.md" ] && continue
    if [ ! -f "results/manifests/$name.json" ]; then
        echo "    note: $name has no companion manifest (legacy, pre-stamping)"
        legacy=$((legacy + 1))
    fi
done
if [ "$legacy" -eq 0 ]; then
    echo "    every artifact is stamped"
else
    echo "    $legacy legacy artifact(s) tolerated; regenerating them stamps a manifest"
fi
