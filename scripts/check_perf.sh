#!/usr/bin/env sh
# Perf regression gate: re-measures the engine hot paths and fails when any
# bin's hot-loop speedup drops below the 5x floor or regresses more than
# 10% relative to the committed baseline (results/BENCH_pr6.json).
#
# The comparison is against the *speedup ratio*, not absolute wall time, so
# the gate is machine-independent: reference and optimized paths are timed
# on the same host in the same process.
#
# Running the bench bin rewrites results/BENCH_pr6.json with the fresh
# numbers, so the committed baseline is copied aside first and the gate
# compares against the copy.
set -eu

cd "$(dirname "$0")/.."

baseline="results/BENCH_pr6.json"
if [ ! -f "$baseline" ]; then
    echo "error: no committed baseline at $baseline" >&2
    echo "hint: run 'cargo run --release -p acorr-bench --bin perf6' and commit the artifact" >&2
    exit 2
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
cp "$baseline" "$tmp"

echo "==> perf6 --baseline $baseline (copied aside)"
cargo run --release -p acorr-bench --bin perf6 -- --baseline "$tmp"

# Companion-manifest audit: every regenerated artifact gets a
# results/manifests/<name>.json stamp (see acorr_bench::write_artifact),
# but artifacts committed before the stamping convention — e.g. the PR-1
# perf trajectory results/perf_pr1.csv — have none. Tolerate those and say
# so, rather than silently skipping them in digest comparisons.
echo "==> companion-manifest audit (results/)"
legacy=0
for artifact in results/*; do
    [ -f "$artifact" ] || continue
    name="$(basename "$artifact")"
    [ "$name" = "README.md" ] && continue
    if [ ! -f "results/manifests/$name.json" ]; then
        echo "    note: $name has no companion manifest (legacy, pre-stamping)"
        legacy=$((legacy + 1))
    fi
done
if [ "$legacy" -eq 0 ]; then
    echo "    every artifact is stamped"
else
    echo "    $legacy legacy artifact(s) tolerated; regenerating them stamps a manifest"
fi
