#!/usr/bin/env sh
# The full PR gate, identical to .github/workflows/ci.yml — run before
# pushing. Uses only the default feature set (zero external dependencies,
# works offline); proptest/criterion extras need a networked machine and
# the commented dev-dependencies restored (see the workspace Cargo.toml).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> examples build and run"
for src in examples/*.rs; do
    name="$(basename "$src" .rs)"
    echo "    --example $name"
    cargo run --release --example "$name" -q >/dev/null
done

echo "==> observability smoke (run --obs-dir + analyze + manifest replay)"
obs_dir="$(mktemp -d)"
./target/release/acorr run --app SOR --threads 8 --nodes 2 \
    --iters 2 --faults moderate --obs-dir "$obs_dir"
./target/release/acorr analyze --obs-dir "$obs_dir"
[ -s "$obs_dir/analysis/report.txt" ] || {
    echo "error: analyze wrote no analysis/report.txt" >&2; exit 1; }
sh scripts/check_obs.sh "$obs_dir"
./target/release/acorr report --manifest "$obs_dir/manifest.json"
rm -rf "$obs_dir"

echo "==> model-check smoke (bounded fault x schedule sweep + seeded bug)"
mc_dir="$(mktemp -d)"
# Clean sweep: two apps through the bounded fault x schedule space.
for app in sor water; do
    ./target/release/acorr explore --app "$app" --threads 8 --nodes 2 \
        --mode model-check --budget 6 --decision-log "$mc_dir/$app.log"
    grep -q "^failure_token=none$" "$mc_dir/$app.log"
done
# Teeth: the seeded bug must be found and shrink to the pinned token.
./target/release/acorr explore --app sor --threads 8 --nodes 2 \
    --mode model-check --budget 8 --inject lose-partitioned-invalidations \
    --decision-log "$mc_dir/injected.log"
grep -q "^failure_token=s1!1$" "$mc_dir/injected.log"
rm -rf "$mc_dir"

echo "==> scale smoke (100k-thread multilevel placement, pinned digest)"
# The assignment digest is a pure function of (threads, nodes, degree,
# seed) — machine-independent — so any behaviour drift in the sparse
# store, the synthetic generator or the multilevel partitioner trips this
# grep. The 120 s ceiling is ~200x the reference wall time: it only
# catches catastrophic slowdowns, the perf9 gate tracks the real numbers.
scale_out="$(timeout 120 ./target/release/acorr place --scale 100000x256)"
echo "$scale_out" | grep -q "digest: fnv1a:e1285098d3c4cfcd" || {
    echo "error: 100000x256 placement digest drifted from the pinned value:" >&2
    echo "$scale_out" >&2
    exit 1
}

echo "==> serve smoke (online placement service, pinned decision timeline)"
# The hotspot decision timeline is a pure function of (seed, scenario,
# jobs) — the digest grep trips on any drift in the traffic driver, the
# phase detector, the candidate placement, or the migration gate.
serve_dir="$(mktemp -d)"
serve_out="$(./target/release/acorr serve --scenario hotspot --steps 48 \
    --timeline "$serve_dir/timeline.txt")"
echo "$serve_out" | grep -q "timeline digest: fnv1a:f2e8753835019d00" || {
    echo "error: hotspot decision timeline drifted from the pinned digest:" >&2
    echo "$serve_out" >&2
    echo "--- timeline ---" >&2
    cat "$serve_dir/timeline.txt" >&2
    exit 1
}
rm -rf "$serve_dir"

echo "==> perf regression gate (scripts/check_perf.sh)"
sh scripts/check_perf.sh

# Opt-in property tests: needs a networked machine and the proptest
# dev-dependency restored first (scripts/enable_proptest.sh).
if [ "${ACORR_PROPTEST:-0}" = "1" ]; then
    for crate in acorr-sim acorr-mem acorr-dsm acorr-place acorr-track acorr-obs; do
        echo "==> cargo test -p $crate --features proptest -q (property tests)"
        cargo test -p "$crate" --features proptest -q
    done
fi

echo "==> OK"
