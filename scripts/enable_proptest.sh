#!/usr/bin/env sh
# Restores the `proptest` dev-dependency that the offline default build
# deliberately omits (see the workspace Cargo.toml). Needs a networked
# machine to fetch the crate afterwards. Then run:
#
#   cargo test -p acorr-dsm --features proptest --test proptest_engine
set -eu

cd "$(dirname "$0")/.."

sed -i 's/^# proptest = "1"$/proptest = "1"/' Cargo.toml
sed -i 's/^# \[dev-dependencies\]$/[dev-dependencies]/' crates/dsm/Cargo.toml
sed -i 's/^# proptest = { workspace = true }$/proptest = { workspace = true }/' \
    crates/dsm/Cargo.toml

echo "proptest restored; run: cargo test -p acorr-dsm --features proptest"
