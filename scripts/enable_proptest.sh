#!/usr/bin/env sh
# Restores the `proptest` dev-dependency that the offline default build
# deliberately omits (see the workspace Cargo.toml). Needs a networked
# machine to fetch the crate afterwards. Then run:
#
#   ACORR_PROPTEST=1 sh scripts/verify.sh
#
# or test one crate directly:
#
#   cargo test -p acorr-track --features proptest --test properties
set -eu

cd "$(dirname "$0")/.."

sed -i 's/^# proptest = "1"$/proptest = "1"/' Cargo.toml
for crate in sim mem dsm place track obs; do
    sed -i 's/^# \[dev-dependencies\]$/[dev-dependencies]/' "crates/$crate/Cargo.toml"
    sed -i 's/^# proptest = { workspace = true }$/proptest = { workspace = true }/' \
        "crates/$crate/Cargo.toml"
done

echo "proptest restored; run: ACORR_PROPTEST=1 sh scripts/verify.sh"
