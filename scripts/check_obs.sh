#!/usr/bin/env sh
# Validates an `acorr run --obs-dir` artifact bundle: every expected file
# present, JSONL lines parse as JSON objects, the Chrome trace is a valid
# trace_event document, the CSVs carry their headers, and the manifest has
# the right schema and a digest. Dependency-free beyond python3 (used only
# for JSON parsing, no third-party modules).
#
# Usage: scripts/check_obs.sh DIR
set -eu

dir="${1:?usage: scripts/check_obs.sh DIR}"

fail() {
    echo "check_obs: $1" >&2
    exit 1
}

for f in events.jsonl trace.json metrics.csv histograms.csv manifest.json; do
    [ -s "$dir/$f" ] || fail "missing or empty $dir/$f"
done

python3 - "$dir" <<'EOF'
import json, sys

dir = sys.argv[1]

def fail(msg):
    print(f"check_obs: {msg}", file=sys.stderr)
    sys.exit(1)

# events.jsonl: every line a standalone JSON object with a type tag.
with open(f"{dir}/events.jsonl") as f:
    for n, line in enumerate(f, 1):
        try:
            event = json.loads(line)
        except ValueError as e:
            fail(f"events.jsonl:{n}: {e}")
        if not isinstance(event, dict) or "type" not in event:
            fail(f"events.jsonl:{n}: not an object with a 'type' tag")

# trace.json: Chrome trace_event envelope with a non-empty event array.
with open(f"{dir}/trace.json") as f:
    trace = json.load(f)
if trace.get("displayTimeUnit") != "ns":
    fail("trace.json: displayTimeUnit is not 'ns'")
events = trace.get("traceEvents")
if not isinstance(events, list) or not events:
    fail("trace.json: traceEvents missing or empty")
if any("ph" not in e for e in events):
    fail("trace.json: event without a phase")

# manifest.json: schema, tool, and a digest to replay against.
with open(f"{dir}/manifest.json") as f:
    manifest = json.load(f)
if manifest.get("schema") != "acorr-obs/1":
    fail(f"manifest.json: unexpected schema {manifest.get('schema')!r}")
for key in ("tool", "digest"):
    if not manifest.get(key):
        fail(f"manifest.json: missing {key}")
if not manifest["digest"].startswith("fnv1a:"):
    fail("manifest.json: digest is not an fnv1a digest")
EOF

head -1 "$dir/metrics.csv" | grep -q "^barrier,at_ns,elapsed_ns" \
    || fail "metrics.csv: bad header"
head -1 "$dir/histograms.csv" | grep -q "^histogram,bucket,lo_ns,hi_ns,count" \
    || fail "histograms.csv: bad header"

# analysis/: produced by `acorr analyze --obs-dir DIR`. Validated whenever
# present; the CI and verify.sh smokes run analyze first, so a missing
# bundle there fails upstream, and a stale or tampered bundle fails here.
if [ -d "$dir/analysis" ]; then
    for f in page_heat.csv thread_comm.csv critical_path.csv spans.csv \
             phases.csv report.txt; do
        [ -s "$dir/analysis/$f" ] || fail "missing or empty $dir/analysis/$f"
    done
    head -1 "$dir/analysis/page_heat.csv" \
        | grep -q "^page,fetches,twins,diffs,diff_bytes,transfers,heat$" \
        || fail "analysis/page_heat.csv: bad header"
    head -1 "$dir/analysis/thread_comm.csv" \
        | grep -q "^thread,remote_misses,tracking_faults,lock_grants,remote_lock_grants,migrations$" \
        || fail "analysis/thread_comm.csv: bad header"
    head -1 "$dir/analysis/critical_path.csv" \
        | grep -q "^barrier,elapsed_ns,stall_ns,critical_node,fetch_wait_ns,lock_wait_ns$" \
        || fail "analysis/critical_path.csv: bad header"
    head -1 "$dir/analysis/spans.csv" | grep -q "^phase,count,total_ns,max_ns$" \
        || fail "analysis/spans.csv: bad header"
    head -1 "$dir/analysis/phases.csv" | grep -q "^window,delta_ppm$" \
        || fail "analysis/phases.csv: bad header"
    # The report is stamped with the digest it was verified against; it
    # must be the manifest's.
    digest="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["digest"])' \
        "$dir/manifest.json")"
    grep -q "^stats digest: $digest\$" "$dir/analysis/report.txt" \
        || fail "analysis/report.txt digest line does not match manifest ($digest)"
    echo "check_obs: analysis OK (digest $digest)"
else
    echo "check_obs: note: no analysis/ bundle (run: acorr analyze --obs-dir $dir)"
fi

echo "check_obs: OK ($dir)"
