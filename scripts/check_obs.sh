#!/usr/bin/env sh
# Validates an `acorr run --obs-dir` artifact bundle: every expected file
# present, JSONL lines parse as JSON objects, the Chrome trace is a valid
# trace_event document, the CSVs carry their headers, and the manifest has
# the right schema and a digest. Dependency-free beyond python3 (used only
# for JSON parsing, no third-party modules).
#
# Usage: scripts/check_obs.sh DIR
set -eu

dir="${1:?usage: scripts/check_obs.sh DIR}"

fail() {
    echo "check_obs: $1" >&2
    exit 1
}

for f in events.jsonl trace.json metrics.csv histograms.csv manifest.json; do
    [ -s "$dir/$f" ] || fail "missing or empty $dir/$f"
done

python3 - "$dir" <<'EOF'
import json, sys

dir = sys.argv[1]

def fail(msg):
    print(f"check_obs: {msg}", file=sys.stderr)
    sys.exit(1)

# events.jsonl: every line a standalone JSON object with a type tag.
with open(f"{dir}/events.jsonl") as f:
    for n, line in enumerate(f, 1):
        try:
            event = json.loads(line)
        except ValueError as e:
            fail(f"events.jsonl:{n}: {e}")
        if not isinstance(event, dict) or "type" not in event:
            fail(f"events.jsonl:{n}: not an object with a 'type' tag")

# trace.json: Chrome trace_event envelope with a non-empty event array.
with open(f"{dir}/trace.json") as f:
    trace = json.load(f)
if trace.get("displayTimeUnit") != "ns":
    fail("trace.json: displayTimeUnit is not 'ns'")
events = trace.get("traceEvents")
if not isinstance(events, list) or not events:
    fail("trace.json: traceEvents missing or empty")
if any("ph" not in e for e in events):
    fail("trace.json: event without a phase")

# manifest.json: schema, tool, and a digest to replay against.
with open(f"{dir}/manifest.json") as f:
    manifest = json.load(f)
if manifest.get("schema") != "acorr-obs/1":
    fail(f"manifest.json: unexpected schema {manifest.get('schema')!r}")
for key in ("tool", "digest"):
    if not manifest.get(key):
        fail(f"manifest.json: missing {key}")
if not manifest["digest"].startswith("fnv1a:"):
    fail("manifest.json: digest is not an fnv1a digest")
EOF

head -1 "$dir/metrics.csv" | grep -q "^barrier,at_ns,elapsed_ns" \
    || fail "metrics.csv: bad header"
head -1 "$dir/histograms.csv" | grep -q "^histogram,bucket,lo_ns,hi_ns,count" \
    || fail "histograms.csv: bad header"

echo "check_obs: OK ($dir)"
