//! All placement strategies head-to-head, including the exact optimum.
//!
//! On a reduced Water instance (12 threads, 3 nodes — small enough for the
//! branch-and-bound optimum), compare stretch, random, min-cost and optimal
//! by cut cost and by actually running the application.
//!
//! Run with: `cargo run --release --example heuristic_showdown`

use active_correlation_tracking::apps::Water;
use active_correlation_tracking::dsm::DsmError;
use active_correlation_tracking::experiment::Workbench;
use active_correlation_tracking::place::{place, Strategy};
use active_correlation_tracking::sim::DetRng;
use active_correlation_tracking::track::cut_cost;

fn main() -> Result<(), DsmError> {
    let bench = Workbench::new(3, 12)?;
    let app = || Water::new(96, 12);
    let truth = bench.ground_truth(app)?;

    println!(
        "{:<12} {:>9} {:>15} {:>12}",
        "strategy", "cut cost", "remote misses", "time"
    );
    let mut rng = DetRng::new(7);
    let mut results = Vec::new();
    for strategy in [
        Strategy::Stretch,
        Strategy::RandomBalanced,
        Strategy::MinCost,
        Strategy::Optimal,
    ] {
        let mapping = place(strategy, &truth.corr, &bench.cluster, &mut rng);
        let cut = cut_cost(&truth.corr, &mapping);
        let mut dsm = bench.dsm(app(), mapping)?;
        dsm.run_iterations(1)?; // cold start
        let stats = dsm.run_iterations(5)?;
        println!(
            "{:<12} {:>9} {:>15} {:>12}",
            strategy.to_string(),
            cut,
            stats.remote_misses,
            stats.elapsed.to_string()
        );
        results.push((strategy, cut, stats.remote_misses));
    }

    let optimal_cut = results
        .iter()
        .find(|(s, ..)| *s == Strategy::Optimal)
        .map(|&(_, c, _)| c)
        .expect("optimal ran");
    let mincost_cut = results
        .iter()
        .find(|(s, ..)| *s == Strategy::MinCost)
        .map(|&(_, c, _)| c)
        .expect("min-cost ran");
    println!(
        "\nmin-cost is within {:.1}% of the exact optimum (the paper reports\n\
         its clustering heuristics within 1% on all applications).",
        100.0 * (mincost_cut as f64 - optimal_cut as f64) / optimal_cut.max(1) as f64
    );
    assert!(mincost_cut as f64 <= optimal_cut as f64 * 1.01 + 1e-9);
    Ok(())
}
