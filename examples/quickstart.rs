//! Quickstart: track an application, look at its sharing, and migrate it to
//! a better placement.
//!
//! Run with: `cargo run --release --example quickstart`

use active_correlation_tracking::apps::Sor;
use active_correlation_tracking::dsm::DsmError;
use active_correlation_tracking::experiment::Workbench;
use active_correlation_tracking::place::min_cost;
use active_correlation_tracking::sim::Mapping;
use active_correlation_tracking::track::{cut_cost, render_ascii, MapStyle};

fn main() -> Result<(), DsmError> {
    // A 16-thread SOR instance on a 4-node cluster.
    let bench = Workbench::new(4, 16)?;
    let app = || Sor::new(512, 512, 16);

    // 1. One active-tracking phase yields exact per-thread access bitmaps
    //    and the thread-correlation matrix.
    let truth = bench.ground_truth(app)?;
    println!("Correlation map (origin lower-left, darker = more sharing):");
    println!("{}", render_ascii(&truth.corr, &MapStyle::default()));

    // 2. Compare placements by cut cost before running anything.
    let stretch = Mapping::stretch(&bench.cluster);
    let scrambled = {
        let mut rng = active_correlation_tracking::sim::DetRng::new(1);
        stretch.permuted(&mut rng)
    };
    let better = min_cost(&truth.corr, &bench.cluster);
    println!("cut(stretch)    = {}", cut_cost(&truth.corr, &stretch));
    println!("cut(scrambled)  = {}", cut_cost(&truth.corr, &scrambled));
    println!("cut(min-cost)   = {}", cut_cost(&truth.corr, &better));

    // 3. Run the application under the scrambled placement, then migrate to
    //    the min-cost mapping and watch remote misses drop.
    let mut dsm = bench.dsm(app(), scrambled)?;
    dsm.run_iterations(1)?; // cold start
    let before = dsm.run_iterations(3)?;
    let report = dsm.migrate_to(better)?;
    dsm.run_iterations(1)?; // migrated threads re-cache their pages
    let after = dsm.run_iterations(3)?;
    println!(
        "\nmigrated {} threads ({} KiB of stacks)",
        report.moved,
        report.bytes / 1024
    );
    println!(
        "remote misses over 3 iterations: {} before -> {} after",
        before.remote_misses, after.remote_misses
    );
    println!(
        "simulated time over 3 iterations: {} -> {}",
        before.elapsed, after.elapsed
    );
    assert!(after.remote_misses < before.remote_misses);
    Ok(())
}
