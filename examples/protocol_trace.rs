//! Watching the protocol work: event tracing.
//!
//! Enables the bounded protocol trace on a tiny two-node run and prints the
//! event timeline — write faults creating twins, diffs finalized at the
//! barrier, the reader's remote miss, the barrier releases. Then switches
//! the same program to the single-writer protocol and shows the ownership
//! ping-pong §6 talks about.
//!
//! Run with: `cargo run --release --example protocol_trace`

use active_correlation_tracking::dsm::{
    trace::Event, Dsm, DsmConfig, DsmError, Op, Program, WriteMode,
};
use active_correlation_tracking::sim::{ClusterConfig, Mapping, SimDuration};

/// Two threads on two nodes, taking turns with one shared page.
#[derive(Clone)]
struct PingPong;

impl Program for PingPong {
    fn name(&self) -> &str {
        "ping-pong"
    }
    fn shared_bytes(&self) -> u64 {
        4096
    }
    fn num_threads(&self) -> usize {
        2
    }
    fn script(&self, thread: usize, _iteration: usize) -> Vec<Op> {
        if thread == 0 {
            vec![Op::write(0, 128), Op::Barrier, Op::read(2048, 128)]
        } else {
            vec![Op::Barrier, Op::write(2048, 128), Op::read(0, 128)]
        }
    }
}

fn run_with(mode: WriteMode) -> Result<(), DsmError> {
    let cluster = ClusterConfig::new(2, 2)?;
    let mut dsm = Dsm::new(
        DsmConfig::new(cluster).with_write_mode(mode),
        PingPong,
        Mapping::stretch(&cluster),
    )?;
    dsm.enable_tracing(64);
    dsm.run_iterations(2)?;
    let trace = dsm.take_trace().expect("tracing was enabled");
    println!("{}", trace.render());
    let transfers = trace
        .iter()
        .filter(|(_, e)| matches!(e, Event::OwnershipTransfer { .. }))
        .count();
    let diffs = trace
        .iter()
        .filter(|(_, e)| matches!(e, Event::DiffCreated { .. }))
        .count();
    println!("ownership transfers: {transfers}, diffs created: {diffs}\n");
    Ok(())
}

fn main() -> Result<(), DsmError> {
    println!("=== multi-writer LRC (CVM's protocol) ===");
    run_with(WriteMode::MultiWriter)?;
    println!("=== single-writer with 100us delta (Mirage-style) ===");
    run_with(WriteMode::SingleWriter {
        delta: SimDuration::from_micros(100),
    })?;
    println!(
        "Under multi-writer, writes produce twins and diffs and nobody\n\
         steals pages; under single-writer the same program moves page\n\
         ownership back and forth instead."
    );
    Ok(())
}
