//! Performance tuning with correlation maps (§3 of the paper).
//!
//! Correlation maps visualize how an application shares data between
//! threads — and how that structure shifts with the thread count, which is
//! exactly what a performance engineer needs when choosing a cluster
//! configuration. This example renders maps for reduced-size FFT and Ocean
//! instances at several thread counts and prints what to look for.
//!
//! Run with: `cargo run --release --example tuning_maps`

use active_correlation_tracking::apps::{Fft, Ocean};
use active_correlation_tracking::dsm::DsmError;
use active_correlation_tracking::experiment::Workbench;
use active_correlation_tracking::sim::Mapping;
use active_correlation_tracking::track::cut_cost;
use active_correlation_tracking::track::{
    internal_cost, render_ascii, CorrelationMatrix, MapStyle,
};

fn show(corr: &CorrelationMatrix, label: &str) {
    println!("--- {label} ---");
    println!("{}", render_ascii(corr, &MapStyle::default()));
}

fn main() -> Result<(), DsmError> {
    // FFT: the sharing-cluster size is input-dependent (Table 4's lesson).
    for (label, nz) in [("FFT 16x16x16", 16usize), ("FFT 16x16x64", 64)] {
        let bench = Workbench::new(4, 16)?;
        let truth = bench.ground_truth(|| Fft::new("fft", 16, 16, nz, 16))?;
        show(&truth.corr, &format!("{label}, 16 threads"));
    }

    // Ocean: block size grows with the thread count, block count stays
    // fixed (Table 3's lesson) — so more threads per node keeps blocks
    // inside nodes.
    for threads in [16usize, 32] {
        let bench = Workbench::new(4, threads)?;
        let truth = bench.ground_truth(|| Ocean::new(64, threads))?;
        show(&truth.corr, &format!("Ocean 64x64, {threads} threads"));
        // Quantify what the eye sees: how much sharing lands inside nodes
        // under the natural (stretch) placement?
        let stretch = Mapping::stretch(&bench.cluster);
        let inside = internal_cost(&truth.corr, &stretch);
        let outside = cut_cost(&truth.corr, &stretch);
        println!(
            "stretch keeps {:.0}% of sharing inside nodes ({inside} of {})\n",
            100.0 * inside as f64 / (inside + outside).max(1) as f64,
            inside + outside,
        );
    }

    println!(
        "Reading the maps: a dark diagonal means neighbor exchange (keep\n\
         consecutive threads together — stretch is optimal); discrete blocks\n\
         mean the block size must divide the per-node thread count; a dark\n\
         background means all-to-all sharing that no placement can avoid."
    );
    Ok(())
}
