//! Choosing a cluster size from a correlation map (§3's LU discussion).
//!
//! The paper observes that 32-thread LU2k shares in 8-thread blocks, so an
//! 8-node (4 threads/node) configuration splits every block and can end up
//! slower than a 4-node one. This example runs that workflow end-to-end on
//! a reduced LU: track once, classify the map, ask the advisor which node
//! sizes are compatible, then *verify* the advice by running the rejected
//! and accepted configurations.
//!
//! Run with: `cargo run --release --example cluster_sizing`

use active_correlation_tracking::apps::Lu;
use active_correlation_tracking::dsm::DsmError;
use active_correlation_tracking::experiment::{node_count_study, Workbench};
use active_correlation_tracking::track::{compatible_node_sizes, profile_map, Structure};

fn main() -> Result<(), DsmError> {
    let threads = 16;
    let app = || Lu::new("LU-mini", 512, threads);

    // 1. Track once and classify the sharing structure.
    let bench = Workbench::new(4, threads)?;
    let truth = bench.ground_truth(app)?;
    let profile = profile_map(&truth.corr);
    println!("map profile: {profile}");
    let sizes = compatible_node_sizes(&profile, threads);
    println!("advisor: compatible per-node thread counts: {sizes:?}");

    // 2. Verify by running 2/4/8-node configurations (in parallel: each
    //    node count is an independent, deterministic run).
    let rows = node_count_study(app, threads, &[2, 4, 8], 6, 0)?;
    println!("\nmeasured ({} threads, stretch placement):", threads);
    for row in &rows {
        println!("  {row}");
    }

    // 3. The advice and the measurement must agree: configurations whose
    //    per-node size splits the detected block communicate far more.
    if let Structure::Blocked { block } = profile.structure {
        let splitting: Vec<_> = rows
            .iter()
            .filter(|r| (threads / r.nodes) % block != 0)
            .collect();
        let whole: Vec<_> = rows
            .iter()
            .filter(|r| (threads / r.nodes) % block == 0)
            .collect();
        if let (Some(split), Some(keep)) = (splitting.first(), whole.last()) {
            let ratio = split.remote_misses as f64 / keep.remote_misses.max(1) as f64;
            println!(
                "\nsplitting the {block}-thread blocks ({} nodes) costs {ratio:.1}x the\n\
                 remote misses of keeping them whole ({} nodes) — the §3 judgement,\n\
                 made from one tracked iteration instead of running every size.",
                split.nodes, keep.nodes
            );
            assert!(ratio > 2.0, "the advisor's warning must be real");
        }
    }
    Ok(())
}
