//! Adapting to dynamic sharing patterns (the paper's §7 future work).
//!
//! The stretch heuristic only works for static sharing. This example builds
//! an application whose partner structure *rotates* every few iterations,
//! then compares three policies over the same run:
//!
//! 1. static stretch placement;
//! 2. track once, place with min-cost, never adapt;
//! 3. re-track periodically, age the correlations, re-place and migrate.
//!
//! Run with: `cargo run --release --example adaptive_migration`

use active_correlation_tracking::dsm::{DsmError, Op, Program};
use active_correlation_tracking::experiment::Workbench;
use active_correlation_tracking::place::min_cost;
use active_correlation_tracking::sim::Mapping;
use active_correlation_tracking::track::{AgedCorrelation, CorrelationMatrix};

/// Each thread owns one 2-page block and reads its current *partner*'s
/// block; partners rotate every `phase_len` iterations.
#[derive(Clone)]
struct Rotating {
    threads: usize,
    phase_len: usize,
}

const BLOCK: u64 = 2 * 4096;

impl Program for Rotating {
    fn name(&self) -> &str {
        "rotating-partners"
    }
    fn shared_bytes(&self) -> u64 {
        self.threads as u64 * BLOCK
    }
    fn num_threads(&self) -> usize {
        self.threads
    }
    fn script(&self, thread: usize, iteration: usize) -> Vec<Op> {
        let phase = iteration / self.phase_len;
        // Partner distance grows with the phase: 1, 2, 4, ... (cyclic).
        let dist = 1usize << (phase % 4);
        let partner = (thread + dist) % self.threads;
        vec![
            Op::read(partner as u64 * BLOCK, BLOCK),
            Op::read(thread as u64 * BLOCK, BLOCK),
            Op::compute(2_000_000),
            Op::write(thread as u64 * BLOCK, BLOCK),
        ]
    }
}

fn main() -> Result<(), DsmError> {
    let threads = 16;
    let phase_len = 6;
    let total_iters = 4 * phase_len; // four distinct phases
    let bench = Workbench::new(4, threads)?;
    let app = Rotating { threads, phase_len };

    // Policy 1: static stretch.
    let mut static_dsm = bench.dsm(app.clone(), Mapping::stretch(&bench.cluster))?;
    let static_stats = static_dsm.run_iterations(total_iters)?;

    // Policy 2: track once at the start, min-cost, never adapt.
    let mut once_dsm = bench.dsm(app.clone(), Mapping::stretch(&bench.cluster))?;
    let (_, access) = once_dsm.run_tracked_iteration()?;
    let corr = CorrelationMatrix::from_access(&access);
    once_dsm.migrate_to(min_cost(&corr, &bench.cluster))?;
    let once_stats = once_dsm.run_iterations(total_iters - 1)?;

    // Policy 3: re-track at each phase boundary, age, re-place, migrate.
    let mut adaptive_dsm = bench.dsm(app, Mapping::stretch(&bench.cluster))?;
    let mut aged = AgedCorrelation::new(threads, 0.25);
    let mut adaptive_stats = active_correlation_tracking::dsm::IterStats::new();
    let mut migrations = 0;
    let mut iters_done = 0;
    while iters_done < total_iters {
        // One tracked iteration per phase (its cost is part of the total).
        let (tracked, access) = adaptive_dsm.run_tracked_iteration()?;
        adaptive_stats += tracked;
        iters_done += 1;
        aged.observe(&CorrelationMatrix::from_access(&access));
        let target = min_cost(&aged.snapshot(), &bench.cluster);
        migrations += adaptive_dsm.migrate_to(target)?.moved;
        let rest = (phase_len - 1).min(total_iters - iters_done);
        adaptive_stats += adaptive_dsm.run_iterations(rest)?;
        iters_done += rest;
    }

    println!("rotating-partners, {threads} threads on 4 nodes, {total_iters} iterations:");
    println!(
        "  static stretch   : {:>8} remote misses, {}",
        static_stats.remote_misses, static_stats.elapsed
    );
    println!(
        "  track-once       : {:>8} remote misses, {}",
        once_stats.remote_misses, once_stats.elapsed
    );
    println!(
        "  adaptive (re-track every phase, {migrations} migrations): {:>8} remote misses, {}",
        adaptive_stats.remote_misses, adaptive_stats.elapsed
    );
    assert!(
        adaptive_stats.remote_misses < static_stats.remote_misses,
        "adaptation must beat a static placement on a dynamic pattern"
    );
    println!(
        "\nThe rotating pattern defeats any single placement; periodic\n\
         re-tracking plus migration follows the phases — the min-cost path\n\
         the paper prescribes for adaptive codes."
    );
    Ok(())
}
